#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace rafiki::net {
namespace {

double elapsed_us(std::chrono::steady_clock::time_point since,
                  std::chrono::steady_clock::time_point until) {
  return std::chrono::duration<double, std::micro>(until - since).count();
}

WireError wire_error_for(DecodeStatus status, FrameType type) {
  switch (status) {
    case DecodeStatus::kBadVersion:
      return WireError::kUnsupportedVersion;
    case DecodeStatus::kBadLength:
      return WireError::kPayloadTooLarge;
    case DecodeStatus::kBadPayload:
      return WireError::kBadPayload;
    case DecodeStatus::kBadEnum:
      return type == FrameType::kRequest ? WireError::kUnknownEndpoint
                                         : WireError::kBadFrame;
    default:
      return WireError::kBadFrame;
  }
}

}  // namespace

void Server::Mailbox::post(ConnectionPtr conn) {
  {
    MutexLock lock(mutex);
    dirty.push_back(std::move(conn));
  }
  waker.wake();
}

Server::Server(serve::TuningBackend& service, ServerOptions options)
    : service_(service), options_(std::move(options)), stats_(service.stats()) {
  if (options_.io_threads == 0) options_.io_threads = 1;
  if (options_.read_chunk == 0) options_.read_chunk = 4096;
  if (options_.max_output_buffer == 0) options_.max_output_buffer = 1 << 16;
}

Server::~Server() { stop(); }

bool Server::start() {
  MutexLock lock(lifecycle_mutex_);
  if (started_) return !stopped_;
  if (stopped_) return false;

  if (!io_backend_available(options_.io_backend)) {
    last_error_ = std::string("io backend '") + io_backend_name(options_.io_backend) +
                  "' is unavailable on this platform";
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    last_error_ = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (options_.so_sndbuf > 0) {
    // Accepted sockets inherit the (now autotune-pinned) send buffer.
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                 sizeof options_.so_sndbuf);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "inet_pton(" + options_.host + ") failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    last_error_ = "bind(" + options_.host + ") failed: " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    last_error_ = "listen() failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  loops_.clear();
  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->mailbox = std::make_shared<Mailbox>();
    loop->poller = EventPoller::create(options_.io_backend);
    // Registration happens here (single-threaded) so failures surface as a
    // start() error instead of a silently deaf loop.
    if (!loop->mailbox->waker.valid() || loop->poller == nullptr ||
        !loop->poller->add(loop->mailbox->waker.read_fd(), true, false, nullptr) ||
        (i == 0 && !loop->poller->add(listen_fd_, true, false, nullptr))) {
      last_error_ = std::string("io loop setup failed for backend '") +
                    io_backend_name(options_.io_backend) + "'";
      ::close(listen_fd_);
      listen_fd_ = -1;
      loops_.clear();
      return false;
    }
    loops_.push_back(std::move(loop));
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { loop_main(i); });
  }
  started_ = true;
  return true;
}

void Server::stop() {
  {
    MutexLock lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  draining_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    if (loop->mailbox) loop->mailbox->waker.wake();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loops are gone; close anything still registered (a connection handed to
  // a loop in the instant it exited never got served — close it cleanly).
  for (auto& loop : loops_) {
    {
      // The loop threads are joined; the lock is for the analysis (and any
      // future acceptor that might outlive them), not a live race.
      MutexLock lock(loop->incoming_mutex);
      for (auto& conn : loop->incoming) {
        if (conn->fd >= 0) close_connection(*loop, *conn);
      }
      loop->incoming.clear();
    }
    for (auto& conn : loop->conns) {
      if (conn->fd >= 0) close_connection(*loop, *conn);
    }
    loop->conns.clear();
    loop->read_set.clear();
    loop->flush_set.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::loop_main(std::size_t index) {
  Loop& loop = *loops_[index];
  const bool acceptor = index == 0;
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  for (;;) {
    adopt_incoming(loop);
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && !drain_deadline_set) {
      drain_deadline_set = true;
      // det:ok(wall-clock): the drain grace bounds real elapsed time by design
      drain_deadline = std::chrono::steady_clock::now() + options_.drain_grace;
    }
    if (draining && loop.conns.empty()) {
      // The accept queue may still hold connections whose handshake finished
      // before the drain began — possibly with frames already buffered.
      // Closing the listener would RST them mid-request, so adopt them and
      // let the drain path answer (kShuttingDown) before closing.
      if (acceptor) do_accept(loop);
      if (loop.conns.empty()) {
        MutexLock lock(loop.incoming_mutex);
        if (loop.incoming.empty()) return;
      }
      continue;  // late handoff or backlog adoption: serve it next pass
    }

    // Believed-unread data (rbuf-cap leftovers, resumed readers) means more
    // work right now; a draining loop otherwise sleeps exactly until the
    // grace deadline — the next event (completion, FIN, racing bytes) wakes
    // it earlier.
    int timeout_ms = -1;
    if (!loop.read_set.empty()) {
      timeout_ms = 0;
    } else if (draining) {
      // det:ok(wall-clock): the drain grace bounds real elapsed time by design
      const auto now = std::chrono::steady_clock::now();
      timeout_ms = now >= drain_deadline
                       ? 0
                       : static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                              drain_deadline - now)
                                              .count()) +
                             1;
    }

    loop.events.clear();
    loop.poller->wait(timeout_ms, loop.events);
    const bool saw_accept = dispatch_events(loop);
    if (acceptor && saw_accept) do_accept(loop);
    grab_mailbox(loop);
    read_pass(loop);
    absorb_completions(loop, acceptor);
    flush_pass(loop);
    if (draining) drain_sweep(loop, drain_deadline);
  }
}

void Server::adopt_incoming(Loop& loop) {
  loop.grabbed.clear();
  {
    MutexLock lock(loop.incoming_mutex);
    loop.grabbed.swap(loop.incoming);
  }
  for (auto& conn : loop.grabbed) register_conn(loop, std::move(conn));
  loop.grabbed.clear();
}

void Server::register_conn(Loop& loop, ConnectionPtr conn) {
  if (!loop.poller->add(conn->fd, true, false, conn.get())) {
    close_connection(loop, *conn);
    return;
  }
  conn->conn_index = loop.conns.size();
  // The socket may have carried bytes before registration; the first read
  // pass finds out (edge-triggered backends also report pre-existing
  // readiness at add, but remembering it here costs one EAGAIN at most).
  conn->read_ready = true;
  conn->in_read_set = true;
  loop.read_set.push_back(conn);
  loop.conns.push_back(std::move(conn));
}

void Server::do_accept(Loop& loop) {
  for (;;) {
    // EINTR must retry, not bail: under edge triggering a connection already
    // in the backlog re-arms no readiness edge, so a dropped iteration here
    // could strand it until the next unrelated arrival.
    const int fd = retry_eintr(
        [&] { return ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC); });
    if (fd < 0) return;  // EAGAIN (or a transient error): the next edge retries
    // Approximate admission bound: closes on other loops may lag a beat,
    // which only makes the cap momentarily conservative. Relaxed is enough.
    if (open_connections_.load(std::memory_order_relaxed) >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    stats_.record_connection_open();

    // During a drain, sibling loops may already have exited; keep backlog
    // adoptions on the accepting loop so every registered connection is
    // served until it is answered and closed. The drain grace still bounds
    // how long any of them can linger.
    const bool draining = draining_.load(std::memory_order_acquire);
    Loop& target = draining ? loop : *loops_[next_loop_];
    if (!draining) next_loop_ = (next_loop_ + 1) % loops_.size();
    conn->mailbox = target.mailbox;
    if (&target == &loop) {
      register_conn(loop, std::move(conn));
    } else {
      {
        MutexLock lock(target.incoming_mutex);
        target.incoming.push_back(std::move(conn));
      }
      target.mailbox->waker.wake();
    }
  }
}

bool Server::dispatch_events(Loop& loop) {
  bool saw_accept = false;
  for (const PollerEvent& ev : loop.events) {
    if (ev.data == nullptr) {
      // The two data-less registrations: this loop's waker and (loop 0
      // only) the listener.
      if (ev.fd == loop.mailbox->waker.read_fd()) {
        loop.mailbox->waker.drain();
      } else {
        saw_accept = true;
      }
      continue;
    }
    auto* conn = static_cast<Connection*>(ev.data);
    if (conn->fd < 0) continue;
    if (ev.hangup) {
      // POLLERR/HUP report regardless of interest masks; let the read path
      // surface the error even on a read-throttled connection.
      conn->read_paused = false;
    }
    if (ev.readable || ev.hangup) conn->read_ready = true;
    if (ev.writable) {
      conn->write_ready = true;
      MutexLock lock(conn->out_mutex);
      if (conn->opos < conn->obuf.size() && !conn->flush_queued) {
        conn->flush_queued = true;
        loop.flush_set.push_back(conn->shared_from_this());
      }
    }
    if (conn->read_ready && !conn->read_paused && !conn->in_read_set) {
      conn->in_read_set = true;
      loop.read_set.push_back(conn->shared_from_this());
    }
  }
  loop.events.clear();
  return saw_accept;
}

void Server::grab_mailbox(Loop& loop) {
  loop.grabbed.clear();
  {
    MutexLock lock(loop.mailbox->mutex);
    loop.grabbed.swap(loop.mailbox->dirty);
  }
  for (auto& conn : loop.grabbed) {
    if (conn->fd < 0) continue;  // closed while parked in the mailbox
    loop.flush_set.push_back(std::move(conn));
  }
  loop.grabbed.clear();
}

void Server::read_pass(Loop& loop) {
  // Entries appended during the pass (flush resumptions) are next pass's
  // work; snapshot the size so the compaction below stays simple.
  const std::size_t n = loop.read_set.size();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ConnectionPtr conn = std::move(loop.read_set[i]);
    conn->in_read_set = false;
    if (conn->fd < 0) continue;
    if (!conn->read_ready || conn->read_paused) continue;
    handle_read(loop, *conn);
    process_frames(loop, conn);
    if (should_close(*conn)) {
      close_connection(loop, *conn);
      remove_conn(loop, *conn);
      continue;
    }
    if (conn->read_ready && !conn->read_paused) {
      conn->in_read_set = true;
      loop.read_set[kept++] = std::move(conn);
    }
  }
  // Compact: drop the processed prefix, keep late appendees.
  if (kept < n) {
    loop.read_set.erase(loop.read_set.begin() + static_cast<std::ptrdiff_t>(kept),
                        loop.read_set.begin() + static_cast<std::ptrdiff_t>(n));
  }
}

void Server::absorb_completions(Loop& loop, bool acceptor) {
  if (!loop.poller->edge_triggered() || options_.flush_absorb_rounds == 0) return;
  if (loop.flush_set.empty() &&
      loop.mailbox->outstanding.load(std::memory_order_relaxed) == 0) {
    return;
  }
  // Completions race the pass: a response finishing while we were still
  // reading other connections would otherwise flush alone next pass. Under
  // edge triggering a zero-timeout re-wait is O(ready) — effectively free —
  // so give the workers a beat (yield) and fold whatever landed into this
  // pass's flushes. Bounded rounds keep the added latency to microseconds
  // even when a slow request (a GA optimize) pins `outstanding` high.
  for (std::size_t round = 0; round < options_.flush_absorb_rounds; ++round) {
    if (loop.mailbox->outstanding.load(std::memory_order_relaxed) > 0) {
      std::this_thread::yield();
    }
    loop.events.clear();
    const std::size_t got = loop.poller->wait(0, loop.events);
    if (got == 0 &&
        loop.mailbox->outstanding.load(std::memory_order_relaxed) == 0) {
      break;
    }
    if (got > 0) {
      const bool saw_accept = dispatch_events(loop);
      if (acceptor && saw_accept) do_accept(loop);
      grab_mailbox(loop);
      read_pass(loop);
    }
  }
}

void Server::flush_pass(Loop& loop) {
  for (std::size_t i = 0; i < loop.flush_set.size(); ++i) {
    ConnectionPtr conn = std::move(loop.flush_set[i]);
    if (conn->fd < 0) continue;
    flush(loop, *conn);
    if (should_close(*conn)) {
      close_connection(loop, *conn);
      remove_conn(loop, *conn);
    }
  }
  loop.flush_set.clear();
}

void Server::drain_sweep(Loop& loop, std::chrono::steady_clock::time_point deadline) {
  for (std::size_t i = 0; i < loop.conns.size();) {
    const ConnectionPtr conn = loop.conns[i];
    bool close = should_close(*conn);
    if (!close && idle(*conn)) {
      // Catch bytes that raced in just before (or during) the drain and
      // answer them (kShuttingDown). An idle connection is then the
      // peer's to release: a client mid-burst may have frames on the wire
      // that a momentary idle observation would lose, so hold the
      // connection until its FIN arrives (read_closed -> should_close) —
      // or the drain grace expires, which bounds stop() against silent
      // peers.
      handle_read(loop, *conn);
      process_frames(loop, conn);
      flush(loop, *conn);
      // det:ok(wall-clock): the drain grace bounds real elapsed time by design
      const bool grace_expired = std::chrono::steady_clock::now() >= deadline;
      close = should_close(*conn) || (idle(*conn) && grace_expired);
    }
    if (close) {
      close_connection(loop, *conn);
      remove_conn(loop, *conn);  // swap-erase: re-examine slot i
    } else {
      ++i;
    }
  }
}

void Server::handle_read(Loop& loop, Connection& conn) {
  if (conn.read_closed || conn.fatal || conn.dead.load(std::memory_order_relaxed)) {
    conn.read_ready = false;
    return;
  }
  // Bound unprocessed buffering: one oversized-frame claim is rejected at
  // decode, so two max frames of slack is plenty.
  const std::size_t cap = 2 * (options_.max_payload + kHeaderSize);
  for (;;) {
    if (conn.obuf_bytes.load(std::memory_order_relaxed) >= options_.max_output_buffer) {
      // Output high-water: the peer is not draining its responses. Stop
      // reading (flush() resumes below half) so its pipeline backs up into
      // its own TCP window instead of server memory. read_ready survives —
      // under edge triggering no new readiness edge will announce the bytes
      // we deliberately left in the kernel.
      conn.read_paused = true;
      set_interest(loop, conn, false, conn.want_write);
      return;
    }
    if (conn.rbuf.size() - conn.rpos >= cap) return;  // decode backlog bound
    const std::size_t old = conn.rbuf.size();
    conn.rbuf.resize(old + options_.read_chunk);
    const ssize_t n = retry_eintr(
        [&] { return ::recv(conn.fd, conn.rbuf.data() + old, options_.read_chunk, 0); });
    if (n > 0) {
      conn.rbuf.resize(old + static_cast<std::size_t>(n));
      stats_.record_wire_read(static_cast<std::size_t>(n));
      continue;
    }
    conn.rbuf.resize(old);
    conn.read_ready = false;  // EOF/EAGAIN/error: nothing left until a new edge
    if (n == 0) {
      conn.read_closed = true;  // peer FIN; finish in-flight work, then close
      set_interest(loop, conn, false, conn.want_write);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    // Loop-thread-only flag (see server.h): relaxed store, no ordering needed.
    conn.dead.store(true, std::memory_order_relaxed);
    return;
  }
}

void Server::process_frames(Loop& loop, const ConnectionPtr& conn) {
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status =
        decode_frame(conn->rbuf.data() + conn->rpos, conn->rbuf.size() - conn->rpos,
                     options_.max_payload, frame, consumed);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kOk) {
      stats_.record_frame_in();
      conn->rpos += consumed;
      // Adopt the peer's dialect: every answer from here on is encoded in
      // the version of the last well-formed frame it sent.
      conn->wire_version = frame.version;
      if (frame.type == FrameType::kRequest) {
        handle_request(loop, conn, frame);
      } else {
        // A client must only send requests; answer the misuse, keep the
        // stream (the frame itself was well-formed).
        queue_error(loop, *conn, frame.request_id, WireError::kBadFrame, frame.tenant);
      }
      continue;
    }
    stats_.record_decode_error();
    const WireError error = wire_error_for(status, frame.type);
    if (decode_recoverable(status)) {
      conn->rpos += consumed;
      queue_error(loop, *conn, frame.request_id, error);
      continue;
    }
    // Fatal: the stream offset is untrustworthy. One last error frame (id 0:
    // no header could be believed), then close once it flushes.
    queue_error(loop, *conn, 0, error);
    conn->fatal = true;
    break;
  }
  if (conn->rpos == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->rpos = 0;
  } else if (conn->rpos > 0) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<std::ptrdiff_t>(conn->rpos));
    conn->rpos = 0;
  }
}

void Server::handle_request(Loop& loop, const ConnectionPtr& conn, const Frame& frame) {
  const std::uint64_t id = frame.request_id;
  const serve::Endpoint endpoint = frame.endpoint;
  const serve::TenantId tenant = frame.tenant;

  if (draining_.load(std::memory_order_acquire)) {
    serve::Response response;
    response.status = serve::Status::kShuttingDown;
    queue_response(loop, *conn, id, endpoint, response, tenant);
    return;
  }
  // Loop-thread admission check: we see our own increments; a worker's
  // decrement arriving late only over-rejects for one pass. Relaxed is fine.
  if (conn->in_flight.load(std::memory_order_relaxed) >= options_.max_pipeline) {
    // Per-connection backpressure surfaces on the wire instead of stalling
    // TCP: the client sees a typed kOverloaded and can back off.
    serve::Response response;
    response.status = serve::Status::kOverloaded;
    queue_response(loop, *conn, id, endpoint, response, tenant);
    return;
  }

  // det:ok(wall-clock): reporting-only wire-latency timestamp
  const auto t0 = std::chrono::steady_clock::now();
  // The submit handoff (queue mutex) publishes this increment to workers.
  conn->in_flight.fetch_add(1, std::memory_order_relaxed);
  serve::ServiceStats* stats = &stats_;
  const std::shared_ptr<Mailbox> mailbox = conn->mailbox;
  mailbox->outstanding.fetch_add(1, std::memory_order_relaxed);
  // The callback snapshots the peer's dialect at submit time: wire_version
  // is loop-thread-owned, so a worker thread must not read it later.
  const std::uint8_t version = conn->wire_version;
  const serve::Status admitted = service_.try_submit(
      frame.request,
      [conn, mailbox, stats, id, endpoint, tenant, version, t0](serve::Response response) {
        // Runs on a service worker thread. Touches only ref-counted state
        // (connection buffers, the mailbox) — never the Server itself.
        std::vector<std::uint8_t> bytes;
        encode_response(id, endpoint, response, bytes, tenant, version);
        bool need_post;
        {
          MutexLock lock(conn->out_mutex);
          conn->obuf.insert(conn->obuf.end(), bytes.begin(), bytes.end());
          ++conn->obuf_frames;
          conn->obuf_bytes.store(conn->obuf.size() - conn->opos, std::memory_order_relaxed);
          // First writer into a quiet buffer posts; later completions
          // piggyback on the pending flush — that is the write coalescing.
          need_post = !conn->flush_queued;
          conn->flush_queued = true;
        }
        stats->record_frame_out();
        // det:ok(wall-clock): reporting-only wire-latency measurement
        const auto t1 = std::chrono::steady_clock::now();
        stats->record_wire_latency(endpoint, elapsed_us(t0, t1));
        conn->in_flight.fetch_sub(1, std::memory_order_release);
        mailbox->outstanding.fetch_sub(1, std::memory_order_relaxed);
        // Post after the decrement: the mailbox mutex publishes it, so the
        // loop's close check on this very wakeup already sees it.
        if (need_post) mailbox->post(conn);
      });
  if (admitted != serve::Status::kOk) {
    // Not admitted — the callback will never fire. Answer inline with the
    // admission verdict (Overloaded / ShuttingDown).
    // Same-thread undo of the increments above; nothing to publish.
    conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
    mailbox->outstanding.fetch_sub(1, std::memory_order_relaxed);
    serve::Response response;
    response.status = admitted;
    queue_response(loop, *conn, id, endpoint, response, tenant);
  }
}

void Server::queue_response(Loop& loop, Connection& conn, std::uint64_t request_id,
                            serve::Endpoint endpoint, const serve::Response& response,
                            serve::TenantId tenant) {
  std::vector<std::uint8_t> bytes;
  encode_response(request_id, endpoint, response, bytes, tenant, conn.wire_version);
  {
    MutexLock lock(conn.out_mutex);
    conn.obuf.insert(conn.obuf.end(), bytes.begin(), bytes.end());
    ++conn.obuf_frames;
    conn.obuf_bytes.store(conn.obuf.size() - conn.opos, std::memory_order_relaxed);
    if (!conn.flush_queued) {
      conn.flush_queued = true;
      loop.flush_set.push_back(conn.shared_from_this());
    }
  }
  stats_.record_frame_out();
  stats_.record_wire_latency(endpoint, 0.0);  // answered inline, no queueing
}

void Server::queue_error(Loop& loop, Connection& conn, std::uint64_t request_id,
                         WireError error, serve::TenantId tenant) {
  std::vector<std::uint8_t> bytes;
  encode_error(request_id, error, bytes, tenant, conn.wire_version);
  {
    MutexLock lock(conn.out_mutex);
    conn.obuf.insert(conn.obuf.end(), bytes.begin(), bytes.end());
    ++conn.obuf_frames;
    conn.obuf_bytes.store(conn.obuf.size() - conn.opos, std::memory_order_relaxed);
    if (!conn.flush_queued) {
      conn.flush_queued = true;
      loop.flush_set.push_back(conn.shared_from_this());
    }
  }
  stats_.record_frame_out();
  stats_.record_error_frame();
}

void Server::flush(Loop& loop, Connection& conn) {
  MutexLock lock(conn.out_mutex);
  conn.flush_queued = false;
  if (conn.dead.load(std::memory_order_relaxed) || conn.fd < 0) {
    conn.obuf.clear();
    conn.opos = 0;
    conn.obuf_frames = 0;
    conn.obuf_bytes.store(0, std::memory_order_relaxed);
    return;
  }
  // Parked on a previous EAGAIN: only a writability edge can clear it, and
  // its dispatch re-queues the flush. Skipping the speculative send here is
  // what makes edge-triggered write handling syscall-free while blocked.
  if (!conn.write_ready) return;
  std::size_t syscalls = 0;
  bool hit_eagain = false;
  while (conn.opos < conn.obuf.size()) {
    const ssize_t n = retry_eintr([&] {
      return ::send(conn.fd, conn.obuf.data() + conn.opos, conn.obuf.size() - conn.opos,
                    MSG_NOSIGNAL);
    });
    ++syscalls;
    if (n > 0) {
      conn.opos += static_cast<std::size_t>(n);
      stats_.record_wire_write(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Partial write: remember unwritability until the poller reports the
      // socket drained (EPOLLOUT edge / POLLOUT level), then resume from
      // opos. The level-triggered backend needs the interest bit flipped on.
      conn.write_ready = false;
      hit_eagain = true;
      set_interest(loop, conn, conn.want_read, true);
      break;
    }
    conn.dead.store(true, std::memory_order_relaxed);  // peer is gone; drop the rest
    conn.obuf.clear();
    conn.opos = 0;
    conn.obuf_frames = 0;
    conn.obuf_bytes.store(0, std::memory_order_relaxed);
    break;
  }
  std::size_t frames_flushed = 0;
  if (!conn.dead.load(std::memory_order_relaxed) && conn.opos >= conn.obuf.size()) {
    // Fully drained: credit every buffered frame to this flush's batch.
    frames_flushed = conn.obuf_frames;
    conn.obuf_frames = 0;
    conn.obuf.clear();
    conn.opos = 0;
    conn.obuf_bytes.store(0, std::memory_order_relaxed);
    if (conn.want_write) set_interest(loop, conn, conn.want_read, false);
  } else if (conn.opos < conn.obuf.size()) {
    conn.obuf_bytes.store(conn.obuf.size() - conn.opos, std::memory_order_relaxed);
  }
  if (syscalls > 0) stats_.record_wire_flush(frames_flushed, syscalls, hit_eagain);
  if (conn.read_paused &&
      conn.obuf_bytes.load(std::memory_order_relaxed) <= options_.max_output_buffer / 2) {
    // The slow reader caught up: resume reads (and re-queue the edge-trigger
    // memory — no fresh edge will announce bytes we already left behind).
    conn.read_paused = false;
    if (!conn.read_closed && !conn.fatal) {
      set_interest(loop, conn, true, conn.want_write);
      if (conn.read_ready && !conn.in_read_set) {
        conn.in_read_set = true;
        loop.read_set.push_back(conn.shared_from_this());
      }
    }
  }
}

void Server::set_interest(Loop& loop, Connection& conn, bool want_read, bool want_write) {
  if (conn.want_read == want_read && conn.want_write == want_write) return;
  conn.want_read = want_read;
  conn.want_write = want_write;
  loop.poller->mod(conn.fd, want_read, want_write);
}

bool Server::idle(Connection& conn) const {
  if (conn.fatal || conn.dead.load(std::memory_order_relaxed) || conn.read_closed) {
    return false;
  }
  // Acquire pairs with the callback's fetch_sub(release): once in_flight
  // reads 0 here, the worker's obuf append is visible too.
  if (conn.in_flight.load(std::memory_order_acquire) != 0) return false;
  if (conn.rpos < conn.rbuf.size()) return false;
  MutexLock lock(conn.out_mutex);
  return conn.opos >= conn.obuf.size();
}

bool Server::should_close(Connection& conn) const {
  if (conn.dead.load(std::memory_order_relaxed)) return true;
  if (!conn.fatal && !conn.read_closed) return false;
  // Acquire pairs with the callback's fetch_sub(release); see idle().
  if (conn.in_flight.load(std::memory_order_acquire) != 0) return false;
  MutexLock lock(conn.out_mutex);
  return conn.opos >= conn.obuf.size();
}

void Server::close_connection(Loop& loop, Connection& conn) {
  if (conn.fd >= 0) {
    loop.poller->del(conn.fd);  // before close(): a poll() set keeps raw fds
    ::close(conn.fd);
    conn.fd = -1;
    stats_.record_connection_close();
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::remove_conn(Loop& loop, Connection& conn) {
  const std::size_t i = conn.conn_index;
  if (i >= loop.conns.size() || loop.conns[i].get() != &conn) return;
  const std::size_t last = loop.conns.size() - 1;
  if (i != last) {
    loop.conns[i] = std::move(loop.conns[last]);
    loop.conns[i]->conn_index = i;
  }
  loop.conns.pop_back();
}

}  // namespace rafiki::net
