file(REMOVE_RECURSE
  "CMakeFiles/table4_scylla.dir/table4_scylla.cpp.o"
  "CMakeFiles/table4_scylla.dir/table4_scylla.cpp.o.d"
  "table4_scylla"
  "table4_scylla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_scylla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
