
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/characterize.cpp" "src/workload/CMakeFiles/rafiki_workload.dir/characterize.cpp.o" "gcc" "src/workload/CMakeFiles/rafiki_workload.dir/characterize.cpp.o.d"
  "/root/repo/src/workload/forecast.cpp" "src/workload/CMakeFiles/rafiki_workload.dir/forecast.cpp.o" "gcc" "src/workload/CMakeFiles/rafiki_workload.dir/forecast.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/rafiki_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/rafiki_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/mgrast.cpp" "src/workload/CMakeFiles/rafiki_workload.dir/mgrast.cpp.o" "gcc" "src/workload/CMakeFiles/rafiki_workload.dir/mgrast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rafiki_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
