# Empty dependencies file for rafiki_cli.
# This may be replaced when dependencies are built.
