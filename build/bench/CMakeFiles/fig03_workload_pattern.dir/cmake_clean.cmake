file(REMOVE_RECURSE
  "CMakeFiles/fig03_workload_pattern.dir/fig03_workload_pattern.cpp.o"
  "CMakeFiles/fig03_workload_pattern.dir/fig03_workload_pattern.cpp.o.d"
  "fig03_workload_pattern"
  "fig03_workload_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_workload_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
