#include "tenant/quota.h"

#include <algorithm>
#include <chrono>

namespace rafiki::tenant {

TenantQuota::TenantQuota(QuotaOptions options) : options_(std::move(options)) {
  if (options_.rate_per_s > 0.0 && options_.burst <= 0.0) {
    options_.burst = options_.rate_per_s;
  }
}

std::uint64_t TenantQuota::now_us() const {
  if (options_.clock_us) return options_.clock_us();
  // Admission rate limiting is real-time by design: the clock decides only
  // whether a request is admitted (kOverloaded), never what an admitted
  // request computes. Tests inject a deterministic clock instead.
  // det:ok(wall-clock): admission-only rate limit; results never depend on it
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now.time_since_epoch())
          .count());
}

void TenantQuota::refill_locked(std::uint64_t now) {
  if (!primed_) {
    // First observation: start from a full bucket so a tenant's initial
    // burst is its configured burst, not zero.
    tokens_ = options_.burst;
    last_refill_us_ = now;
    primed_ = true;
    return;
  }
  if (now <= last_refill_us_) return;  // injected clocks may repeat a tick
  const double elapsed_s = static_cast<double>(now - last_refill_us_) * 1e-6;
  tokens_ = std::min(options_.burst, tokens_ + elapsed_s * options_.rate_per_s);
  last_refill_us_ = now;
}

bool TenantQuota::try_acquire_token() {
  if (options_.rate_per_s <= 0.0) return true;
  const std::uint64_t now = now_us();
  MutexLock lock(mutex_);
  refill_locked(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

bool TenantQuota::begin_request() {
  if (options_.max_in_flight == 0) return true;
  // Exact under concurrency: each claimer reserves a slot first and undoes
  // the reservation if it overshot, so at most max_in_flight claimers ever
  // hold a slot simultaneously.
  const std::size_t prev = in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (prev >= options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void TenantQuota::end_request() {
  if (options_.max_in_flight == 0) return;
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

double TenantQuota::tokens() {
  if (options_.rate_per_s <= 0.0) return 0.0;
  const std::uint64_t now = now_us();
  MutexLock lock(mutex_);
  refill_locked(now);
  return tokens_;
}

}  // namespace rafiki::tenant
