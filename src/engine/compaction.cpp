#include "engine/compaction.h"

#include <algorithm>
#include <cmath>

namespace rafiki::engine {

std::optional<CompactionPlan> SizeTieredPlanner::plan(const std::vector<SSTable>& tables,
                                                      const BusySet& busy) const {
  // Collect idle tables sorted by size, then greedily bucket tables whose
  // size stays within [kBucketLow, kBucketHigh] of the running bucket mean —
  // the standard STCS bucketing rule.
  std::vector<const SSTable*> idle;
  idle.reserve(tables.size());
  for (const auto& table : tables) {
    if (!busy.contains(table.id())) idle.push_back(&table);
  }
  std::sort(idle.begin(), idle.end(),
            [](const SSTable* a, const SSTable* b) { return a->bytes() < b->bytes(); });

  std::vector<std::vector<const SSTable*>> buckets;
  for (const SSTable* table : idle) {
    bool placed = false;
    for (auto& bucket : buckets) {
      double avg = 0.0;
      for (const SSTable* member : bucket) avg += member->bytes();
      avg /= static_cast<double>(bucket.size());
      if (table->bytes() >= kBucketLow * avg && table->bytes() <= kBucketHigh * avg) {
        bucket.push_back(table);
        placed = true;
        break;
      }
    }
    if (!placed) buckets.push_back({table});
  }

  // Prefer the fullest ripe bucket so backlog drains fastest.
  const std::vector<const SSTable*>* best = nullptr;
  for (const auto& bucket : buckets) {
    if (bucket.size() < static_cast<std::size_t>(min_threshold_)) continue;
    if (!best || bucket.size() > best->size()) best = &bucket;
  }
  if (!best) return std::nullopt;

  CompactionPlan plan;
  const auto take = std::min<std::size_t>(best->size(),
                                          static_cast<std::size_t>(max_threshold_));
  for (std::size_t i = 0; i < take; ++i) plan.input_ids.push_back((*best)[i]->id());
  plan.output_level = 0;
  return plan;
}

double LeveledPlanner::level_target_bytes(int level) const {
  return sstable_target_bytes_ * std::pow(10.0, level);
}

std::optional<CompactionPlan> LeveledPlanner::plan(const std::vector<SSTable>& tables,
                                                   const BusySet& busy) const {
  int max_level = 0;
  for (const auto& table : tables) max_level = std::max(max_level, table.level());

  auto idle = [&](const SSTable& table) { return !busy.contains(table.id()); };

  // L0 promotion: once l0_trigger_ flushed tables accumulate, merge all idle
  // L0 tables together with every overlapping idle L1 table into L1.
  std::vector<const SSTable*> l0;
  for (const auto& table : tables) {
    if (table.level() == 0 && idle(table)) l0.push_back(&table);
  }
  if (l0.size() >= static_cast<std::size_t>(l0_trigger_)) {
    CompactionPlan plan;
    plan.output_level = 1;
    bool blocked = false;
    for (const SSTable* table : l0) plan.input_ids.push_back(table->id());
    for (const auto& table : tables) {
      if (table.level() != 1) continue;
      const bool overlaps_any = std::any_of(l0.begin(), l0.end(), [&](const SSTable* t) {
        return t->overlaps(table);
      });
      if (!overlaps_any) continue;
      if (!idle(table)) {
        // Merging around a busy overlapping table would break the level's
        // non-overlap invariant; defer until that compaction finishes.
        blocked = true;
        break;
      }
      plan.input_ids.push_back(table.id());
    }
    if (!blocked) return plan;
  }

  // Level overflow: promote one table from the most overweight level,
  // merging it with the overlapping slice of the next level.
  for (int level = 1; level <= max_level; ++level) {
    double level_bytes = 0.0;
    const SSTable* candidate = nullptr;
    for (const auto& table : tables) {
      if (table.level() != level) continue;
      level_bytes += table.bytes();
      // Promote the widest table first: clears overlap pressure fastest.
      if (idle(table) && (!candidate || table.bytes() > candidate->bytes())) {
        candidate = &table;
      }
    }
    if (level_bytes <= level_target_bytes(level) || !candidate) continue;

    CompactionPlan plan;
    plan.output_level = level + 1;
    plan.input_ids.push_back(candidate->id());
    bool blocked = false;
    for (const auto& table : tables) {
      if (table.level() != level + 1 || !table.overlaps(*candidate)) continue;
      if (!idle(table)) {
        blocked = true;
        break;
      }
      plan.input_ids.push_back(table.id());
    }
    if (!blocked) return plan;
  }
  return std::nullopt;
}

bool leveled_invariant_holds(const std::vector<SSTable>& tables) {
  for (std::size_t i = 0; i < tables.size(); ++i) {
    for (std::size_t j = i + 1; j < tables.size(); ++j) {
      if (tables[i].level() >= 1 && tables[i].level() == tables[j].level() &&
          tables[i].overlaps(tables[j])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rafiki::engine
