#include "serve/stats.h"

#include <algorithm>

namespace rafiki::serve {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Stripe slot for the calling thread. Slots are handed out by an atomic
/// ticket counter on first use (NOT by hashing the thread id, which the
/// determinism lint bans); masked by the stripe count, so with stripes >=
/// worker-pool size each worker effectively owns a slab.
std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, kRelaxed);
  return slot;
}

std::size_t pow2_at_least(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* endpoint_name(Endpoint endpoint) noexcept {
  switch (endpoint) {
    case Endpoint::kPredict:
      return "Predict";
    case Endpoint::kOptimize:
      return "Optimize";
    case Endpoint::kObserveWindow:
      return "ObserveWindow";
  }
  return "?";
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk:
      return "Ok";
    case Status::kOverloaded:
      return "Overloaded";
    case Status::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::kNotReady:
      return "NotReady";
    case Status::kShuttingDown:
      return "ShuttingDown";
  }
  return "?";
}

// --- AtomicHist -------------------------------------------------------------

ServiceStats::AtomicHist::AtomicHist(double lo_in, double hi_in, std::size_t n)
    : lo(lo_in),
      hi(hi_in),
      width((hi_in - lo_in) / static_cast<double>(n ? n : 1)),
      bins(n ? n : 1) {}

void ServiceStats::AtomicHist::add(double x) noexcept {
  // Same clamping rule as util/Histogram::add so the merged view is
  // bin-for-bin identical to what the old single histogram recorded.
  std::size_t bin;
  if (x < lo) {
    bin = 0;
  } else if (x >= hi) {
    bin = bins.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo) / width);
    bin = std::min(bin, bins.size() - 1);
  }
  bins[bin].fetch_add(1, kRelaxed);
}

void ServiceStats::AtomicHist::merge_into(Histogram& out) const noexcept {
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const std::uint64_t n = bins[i].load(kRelaxed);
    if (n == 0) continue;
    // Bin midpoint lands back in bin i of any histogram with the same
    // [lo, hi)/bin-count layout.
    out.add_binned(lo + (static_cast<double>(i) + 0.5) * width,
                   static_cast<std::size_t>(n));
  }
}

// --- stripe construction ----------------------------------------------------

ServiceStats::EndpointStripe::EndpointStripe(const StatsOptions& options)
    : latency(0.0, options.latency_hi_us, std::max<std::size_t>(options.latency_bins, 1)),
      wire_latency(0.0, options.latency_hi_us,
                   std::max<std::size_t>(options.latency_bins, 1)) {}

ServiceStats::Stripe::Stripe(const StatsOptions& options)
    : batch_hist(1.0, static_cast<double>(options.max_batch) + 1.0,
                 std::max<std::size_t>(options.max_batch, 1)) {
  per_endpoint.reserve(kEndpointCount);
  for (std::size_t i = 0; i < kEndpointCount; ++i)
    per_endpoint.push_back(std::make_unique<EndpointStripe>(options));
}

ServiceStats::ServiceStats(StatsOptions options)
    : options_(options),
      retrain_hist_(0.0, options.retrain_hi_us,
                    std::max<std::size_t>(options.retrain_bins, 1)) {
  const std::size_t n = pow2_at_least(std::max<std::size_t>(options_.stripes, 1));
  stripe_mask_ = n - 1;
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) stripes_.push_back(std::make_unique<Stripe>(options_));
}

ServiceStats::Stripe& ServiceStats::stripe() noexcept {
  return *stripes_[thread_slot() & stripe_mask_];
}

// --- record path (relaxed atomics only; no locks) ---------------------------

void ServiceStats::record_accept(Endpoint endpoint, std::size_t queue_depth) {
  Stripe& s = stripe();
  s.per_endpoint[static_cast<std::size_t>(endpoint)]->counters[kIdxAccepted].fetch_add(
      1, kRelaxed);
  s.depth_stats.add(static_cast<double>(queue_depth));
}

void ServiceStats::record_reject(Endpoint endpoint, Status reason) {
  auto& per = endpoint_stripe(endpoint);
  const std::size_t idx =
      reason == Status::kShuttingDown ? kIdxRejShutdown : kIdxRejOverload;
  per.counters[idx].fetch_add(1, kRelaxed);
}

void ServiceStats::record_done(Endpoint endpoint, Status status, double latency_us) {
  auto& per = endpoint_stripe(endpoint);
  per.counters[kIdxCompleted].fetch_add(1, kRelaxed);
  std::size_t idx = kIdxFailedOverload;
  switch (status) {
    case Status::kOk:
      idx = kIdxOk;
      break;
    case Status::kDeadlineExceeded:
      idx = kIdxRejDeadline;
      break;
    case Status::kNotReady:
      idx = kIdxNotReady;
      break;
    // These two were *accepted* and only failed afterwards (e.g. drained
    // with kShuttingDown by stop()); they must not pollute the
    // admission-reject counters that record_reject owns.
    case Status::kShuttingDown:
      idx = kIdxFailedShutdown;
      break;
    case Status::kOverloaded:
      idx = kIdxFailedOverload;
      break;
  }
  per.counters[idx].fetch_add(1, kRelaxed);
  per.latency.add(latency_us);
  per.latency_stats.add(latency_us);
}

void ServiceStats::record_stale(Endpoint endpoint) {
  endpoint_stripe(endpoint).counters[kIdxStale].fetch_add(1, kRelaxed);
}

void ServiceStats::record_batch(std::size_t batch_size) {
  Stripe& s = stripe();
  s.batches.fetch_add(1, kRelaxed);
  s.batch_hist.add(static_cast<double>(batch_size));
  s.batch_stats.add(static_cast<double>(batch_size));
}

void ServiceStats::record_connection_open() {
  stripe().wire[kIdxConnOpen].fetch_add(1, kRelaxed);
}

void ServiceStats::record_connection_close() {
  stripe().wire[kIdxConnClosed].fetch_add(1, kRelaxed);
}

void ServiceStats::record_wire_read(std::size_t bytes) {
  stripe().wire[kIdxBytesIn].fetch_add(bytes, kRelaxed);
}

void ServiceStats::record_wire_write(std::size_t bytes) {
  stripe().wire[kIdxBytesOut].fetch_add(bytes, kRelaxed);
}

void ServiceStats::record_frame_in() { stripe().wire[kIdxFramesIn].fetch_add(1, kRelaxed); }

void ServiceStats::record_frame_out() { stripe().wire[kIdxFramesOut].fetch_add(1, kRelaxed); }

void ServiceStats::record_decode_error() {
  stripe().wire[kIdxDecodeErr].fetch_add(1, kRelaxed);
}

void ServiceStats::record_error_frame() {
  stripe().wire[kIdxErrFrames].fetch_add(1, kRelaxed);
}

void ServiceStats::record_wire_flush(std::size_t frames, std::size_t syscalls,
                                     bool hit_eagain) {
  auto& wire = stripe().wire;
  wire[kIdxFlushes].fetch_add(1, kRelaxed);
  wire[kIdxFlushSyscalls].fetch_add(syscalls, kRelaxed);
  wire[kIdxFlushedFrames].fetch_add(frames, kRelaxed);
  if (hit_eagain) wire[kIdxFlushEagain].fetch_add(1, kRelaxed);
}

void ServiceStats::record_wire_latency(Endpoint endpoint, double latency_us) {
  auto& per = endpoint_stripe(endpoint);
  per.wire_latency.add(latency_us);
  per.wire_stats.add(latency_us);
}

void ServiceStats::record_retrain(double latency_us) {
  retrain_counters_[0].fetch_add(1, kRelaxed);
  retrain_hist_.add(latency_us);
  retrain_stats_.add(latency_us);
}

void ServiceStats::record_retrain_enqueue(std::size_t queue_depth) {
  retrain_depth_stats_.add(static_cast<double>(queue_depth));
}

void ServiceStats::record_retrain_coalesced() {
  retrain_counters_[1].fetch_add(1, kRelaxed);
}

void ServiceStats::record_retrain_rejected() {
  retrain_counters_[2].fetch_add(1, kRelaxed);
}

void ServiceStats::record_retrain_cancelled(std::uint64_t count) {
  retrain_counters_[3].fetch_add(count, kRelaxed);
}

void ServiceStats::record_tenant_admit() { fleet_counters_[0].fetch_add(1, kRelaxed); }

void ServiceStats::record_quota_reject() { fleet_counters_[1].fetch_add(1, kRelaxed); }

void ServiceStats::record_inflight_reject() {
  fleet_counters_[2].fetch_add(1, kRelaxed);
}

void ServiceStats::record_unknown_tenant() {
  fleet_counters_[3].fetch_add(1, kRelaxed);
}

// --- read path (merge-on-read over stripes) ---------------------------------

void ServiceStats::Counters::merge(const Counters& other) noexcept {
  accepted += other.accepted;
  completed += other.completed;
  ok += other.ok;
  rejected_overload += other.rejected_overload;
  rejected_deadline += other.rejected_deadline;
  not_ready += other.not_ready;
  rejected_shutdown += other.rejected_shutdown;
  failed_shutdown += other.failed_shutdown;
  failed_overload += other.failed_overload;
  stale += other.stale;
}

std::uint64_t ServiceStats::sum_counter(Endpoint endpoint, std::size_t idx) const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : stripes_)
    sum += s->per_endpoint[static_cast<std::size_t>(endpoint)]->counters[idx].load(kRelaxed);
  return sum;
}

void ServiceStats::fill_counters(Endpoint endpoint, Counters& out) const noexcept {
  out.accepted = sum_counter(endpoint, kIdxAccepted);
  out.completed = sum_counter(endpoint, kIdxCompleted);
  out.ok = sum_counter(endpoint, kIdxOk);
  out.rejected_overload = sum_counter(endpoint, kIdxRejOverload);
  out.rejected_deadline = sum_counter(endpoint, kIdxRejDeadline);
  out.not_ready = sum_counter(endpoint, kIdxNotReady);
  out.rejected_shutdown = sum_counter(endpoint, kIdxRejShutdown);
  out.failed_shutdown = sum_counter(endpoint, kIdxFailedShutdown);
  out.failed_overload = sum_counter(endpoint, kIdxFailedOverload);
  out.stale = sum_counter(endpoint, kIdxStale);
}

ServiceStats::Counters ServiceStats::counters(Endpoint endpoint) const {
  Counters out;
  fill_counters(endpoint, out);
  return out;
}

ServiceStats::Counters ServiceStats::totals() const {
  Counters sum;
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    Counters per;
    fill_counters(static_cast<Endpoint>(i), per);
    sum.merge(per);
  }
  return sum;
}

ServiceStats::EndpointAggregate::EndpointAggregate(const StatsOptions& options)
    : latency(0.0, options.latency_hi_us, std::max<std::size_t>(options.latency_bins, 1)),
      wire_latency(0.0, options.latency_hi_us,
                   std::max<std::size_t>(options.latency_bins, 1)) {}

double ServiceStats::EndpointAggregate::mean_latency_us() const noexcept {
  return latency_count ? latency_sum / static_cast<double>(latency_count) : 0.0;
}

void ServiceStats::EndpointAggregate::merge(const EndpointAggregate& other) noexcept {
  counters.merge(other.counters);
  latency.merge(other.latency);
  wire_latency.merge(other.wire_latency);
  latency_count += other.latency_count;
  latency_sum += other.latency_sum;
  wire_count += other.wire_count;
  wire_sum += other.wire_sum;
}

ServiceStats::EndpointAggregate ServiceStats::endpoint_aggregate(Endpoint endpoint) const {
  EndpointAggregate agg(options_);
  fill_counters(endpoint, agg.counters);
  for (const auto& s : stripes_) {
    const auto& per = *s->per_endpoint[static_cast<std::size_t>(endpoint)];
    per.latency.merge_into(agg.latency);
    per.wire_latency.merge_into(agg.wire_latency);
    agg.latency_count += per.latency_stats.n.load(kRelaxed);
    agg.latency_sum += per.latency_stats.sum.load(kRelaxed);
    agg.wire_count += per.wire_stats.n.load(kRelaxed);
    agg.wire_sum += per.wire_stats.sum.load(kRelaxed);
  }
  return agg;
}

ServiceStats::RetrainCounters ServiceStats::retrain_counters() const {
  RetrainCounters out;
  out.runs = retrain_counters_[0].load(kRelaxed);
  out.coalesced = retrain_counters_[1].load(kRelaxed);
  out.rejected = retrain_counters_[2].load(kRelaxed);
  out.cancelled = retrain_counters_[3].load(kRelaxed);
  return out;
}

ServiceStats::FleetCounters ServiceStats::fleet_counters() const {
  FleetCounters out;
  out.admitted = fleet_counters_[0].load(kRelaxed);
  out.quota_rejected = fleet_counters_[1].load(kRelaxed);
  out.inflight_rejected = fleet_counters_[2].load(kRelaxed);
  out.unknown_tenant = fleet_counters_[3].load(kRelaxed);
  return out;
}

ServiceStats::WireCounters ServiceStats::wire_counters() const {
  WireCounters out;
  for (const auto& s : stripes_) {
    out.connections_accepted += s->wire[kIdxConnOpen].load(kRelaxed);
    out.connections_closed += s->wire[kIdxConnClosed].load(kRelaxed);
    out.frames_in += s->wire[kIdxFramesIn].load(kRelaxed);
    out.frames_out += s->wire[kIdxFramesOut].load(kRelaxed);
    out.decode_errors += s->wire[kIdxDecodeErr].load(kRelaxed);
    out.error_frames_sent += s->wire[kIdxErrFrames].load(kRelaxed);
    out.bytes_in += s->wire[kIdxBytesIn].load(kRelaxed);
    out.bytes_out += s->wire[kIdxBytesOut].load(kRelaxed);
    out.flushes += s->wire[kIdxFlushes].load(kRelaxed);
    out.flush_syscalls += s->wire[kIdxFlushSyscalls].load(kRelaxed);
    out.flushed_frames += s->wire[kIdxFlushedFrames].load(kRelaxed);
    out.flush_eagain += s->wire[kIdxFlushEagain].load(kRelaxed);
  }
  return out;
}

double ServiceStats::latency_quantile(Endpoint endpoint, double q) const {
  Histogram merged(0.0, options_.latency_hi_us,
                   std::max<std::size_t>(options_.latency_bins, 1));
  for (const auto& s : stripes_)
    s->per_endpoint[static_cast<std::size_t>(endpoint)]->latency.merge_into(merged);
  return merged.quantile(q);
}

double ServiceStats::mean_latency_us(Endpoint endpoint) const {
  std::uint64_t n = 0;
  double sum = 0.0;
  for (const auto& s : stripes_) {
    const auto& acc = s->per_endpoint[static_cast<std::size_t>(endpoint)]->latency_stats;
    n += acc.n.load(kRelaxed);
    sum += acc.sum.load(kRelaxed);
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double ServiceStats::wire_latency_quantile(Endpoint endpoint, double q) const {
  Histogram merged(0.0, options_.latency_hi_us,
                   std::max<std::size_t>(options_.latency_bins, 1));
  for (const auto& s : stripes_)
    s->per_endpoint[static_cast<std::size_t>(endpoint)]->wire_latency.merge_into(merged);
  return merged.quantile(q);
}

double ServiceStats::mean_wire_latency_us(Endpoint endpoint) const {
  std::uint64_t n = 0;
  double sum = 0.0;
  for (const auto& s : stripes_) {
    const auto& acc = s->per_endpoint[static_cast<std::size_t>(endpoint)]->wire_stats;
    n += acc.n.load(kRelaxed);
    sum += acc.sum.load(kRelaxed);
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double ServiceStats::retrain_latency_quantile(double q) const {
  Histogram merged(0.0, options_.retrain_hi_us,
                   std::max<std::size_t>(options_.retrain_bins, 1));
  retrain_hist_.merge_into(merged);
  return merged.quantile(q);
}

double ServiceStats::mean_retrain_latency_us() const {
  const std::uint64_t n = retrain_stats_.n.load(kRelaxed);
  return n ? retrain_stats_.sum.load(kRelaxed) / static_cast<double>(n) : 0.0;
}

double ServiceStats::mean_retrain_depth() const {
  const std::uint64_t n = retrain_depth_stats_.n.load(kRelaxed);
  return n ? retrain_depth_stats_.sum.load(kRelaxed) / static_cast<double>(n) : 0.0;
}

double ServiceStats::max_retrain_depth() const {
  return retrain_depth_stats_.n.load(kRelaxed) ? retrain_depth_stats_.max.load(kRelaxed)
                                               : 0.0;
}

double ServiceStats::mean_batch_size() const {
  std::uint64_t n = 0;
  double sum = 0.0;
  for (const auto& s : stripes_) {
    n += s->batch_stats.n.load(kRelaxed);
    sum += s->batch_stats.sum.load(kRelaxed);
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double ServiceStats::max_batch_size() const {
  double mx = 0.0;
  for (const auto& s : stripes_)
    if (s->batch_stats.n.load(kRelaxed)) mx = std::max(mx, s->batch_stats.max.load(kRelaxed));
  return mx;
}

double ServiceStats::batch_quantile(double q) const {
  Histogram merged(1.0, static_cast<double>(options_.max_batch) + 1.0,
                   std::max<std::size_t>(options_.max_batch, 1));
  for (const auto& s : stripes_) s->batch_hist.merge_into(merged);
  return merged.quantile(q);
}

double ServiceStats::mean_queue_depth() const {
  std::uint64_t n = 0;
  double sum = 0.0;
  for (const auto& s : stripes_) {
    n += s->depth_stats.n.load(kRelaxed);
    sum += s->depth_stats.sum.load(kRelaxed);
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double ServiceStats::max_queue_depth() const {
  double mx = 0.0;
  for (const auto& s : stripes_)
    if (s->depth_stats.n.load(kRelaxed)) mx = std::max(mx, s->depth_stats.max.load(kRelaxed));
  return mx;
}

std::uint64_t ServiceStats::batches() const {
  std::uint64_t sum = 0;
  for (const auto& s : stripes_) sum += s->batches.load(kRelaxed);
  return sum;
}

Table ServiceStats::table_of(std::span<const EndpointAggregate> per_endpoint) {
  Table table({"endpoint", "accepted", "ok", "stale", "overloaded", "deadline",
               "not ready", "failed", "p50 us", "p99 us", "mean us"});
  for (std::size_t i = 0; i < per_endpoint.size(); ++i) {
    const auto& agg = per_endpoint[i];
    table.add_row({endpoint_name(static_cast<Endpoint>(i)),
                   std::to_string(agg.counters.accepted), std::to_string(agg.counters.ok),
                   std::to_string(agg.counters.stale),
                   std::to_string(agg.counters.rejected_overload),
                   std::to_string(agg.counters.rejected_deadline),
                   std::to_string(agg.counters.not_ready),
                   std::to_string(agg.counters.failed_shutdown +
                                  agg.counters.failed_overload),
                   Table::num(agg.latency.quantile(0.5), 1),
                   Table::num(agg.latency.quantile(0.99), 1),
                   Table::num(agg.mean_latency_us(), 1)});
  }
  return table;
}

Table ServiceStats::table() const {
  std::vector<EndpointAggregate> aggs;
  aggs.reserve(kEndpointCount);
  for (std::size_t i = 0; i < kEndpointCount; ++i)
    aggs.push_back(endpoint_aggregate(static_cast<Endpoint>(i)));
  return table_of(aggs);
}

Table ServiceStats::wire_table() const {
  const WireCounters wire = wire_counters();
  Table table({"metric", "value"});
  table.add_row({"connections accepted", std::to_string(wire.connections_accepted)});
  table.add_row({"connections active", std::to_string(wire.active())});
  table.add_row({"frames in", std::to_string(wire.frames_in)});
  table.add_row({"frames out", std::to_string(wire.frames_out)});
  table.add_row({"decode errors", std::to_string(wire.decode_errors)});
  table.add_row({"error frames sent", std::to_string(wire.error_frames_sent)});
  table.add_row({"bytes in", std::to_string(wire.bytes_in)});
  table.add_row({"bytes out", std::to_string(wire.bytes_out)});
  table.add_row({"wire flushes", std::to_string(wire.flushes)});
  table.add_row({"flush syscalls", std::to_string(wire.flush_syscalls)});
  table.add_row({"flush EAGAIN", std::to_string(wire.flush_eagain)});
  table.add_row({"frames per flush", Table::num(wire.frames_per_flush(), 2)});
  table.add_row({"flush syscalls per frame", Table::num(wire.flush_syscalls_per_frame(), 3)});
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    const auto endpoint = static_cast<Endpoint>(i);
    const std::string name = endpoint_name(endpoint);
    table.add_row({name + " wire p50 us", Table::num(wire_latency_quantile(endpoint, 0.5), 1)});
    table.add_row({name + " wire p99 us", Table::num(wire_latency_quantile(endpoint, 0.99), 1)});
  }
  return table;
}

}  // namespace rafiki::serve
