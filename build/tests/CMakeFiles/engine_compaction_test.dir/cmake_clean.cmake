file(REMOVE_RECURSE
  "CMakeFiles/engine_compaction_test.dir/engine_compaction_test.cpp.o"
  "CMakeFiles/engine_compaction_test.dir/engine_compaction_test.cpp.o.d"
  "engine_compaction_test"
  "engine_compaction_test.pdb"
  "engine_compaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
