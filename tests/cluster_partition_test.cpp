// Partitioned (RF < N) cluster behaviour and ScyllaDB model determinism —
// complements engine_cluster_test.cpp, which covers the paper's RF = N setup.
#include <gtest/gtest.h>

#include <unordered_set>

#include "engine/cluster.h"
#include "engine/scylla.h"
#include "workload/generator.h"

namespace rafiki::engine {
namespace {

TEST(ClusterPartition, Rf1PartitionsKeysAcrossNodes) {
  Cluster cluster(Config::defaults(), 3, /*replication_factor=*/1);
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 9000; ++k) keys.push_back(k);
  cluster.preload(keys, 256);

  std::size_t total = 0;
  for (int s = 0; s < 3; ++s) {
    std::unordered_set<std::int64_t> node_keys;
    for (const auto& table : cluster.server(s).sstables()) {
      node_keys.insert(table.keys().begin(), table.keys().end());
    }
    // Hash-ring placement: roughly a third each, and nobody empty.
    EXPECT_GT(node_keys.size(), keys.size() / 6);
    EXPECT_LT(node_keys.size(), keys.size() / 2);
    total += node_keys.size();
  }
  // RF=1: every key on exactly one node (version duplication stays local).
  EXPECT_EQ(total, keys.size());
}

TEST(ClusterPartition, Rf1WritesLandOnExactlyOneNode) {
  Cluster cluster(Config::defaults(), 3, 1);
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.0);
  spec.initial_keys = 3000;
  {
    workload::Generator preload_gen(spec, 1);
    cluster.preload(preload_gen.preload_keys(), spec.value_bytes);
  }
  std::vector<workload::Generator> shooters{workload::Generator(spec, 5)};
  RunOptions opts;
  opts.ops = 6000;
  const auto stats = cluster.run(shooters, opts);
  std::size_t writes = 0;
  for (int s = 0; s < 3; ++s) writes += cluster.server(s).write_count();
  EXPECT_EQ(writes, 6000u);  // no duplication at RF=1
  EXPECT_EQ(stats.ops, 6000u);
}

TEST(ClusterPartition, ReadsBalanceAcrossReplicas) {
  Cluster cluster(Config::defaults(), 2, 2);
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(1.0);
  spec.initial_keys = 8000;
  {
    workload::Generator preload_gen(spec, 1);
    cluster.preload(preload_gen.preload_keys(), spec.value_bytes);
  }
  std::vector<workload::Generator> shooters{workload::Generator(spec, 9)};
  RunOptions opts;
  opts.ops = 8000;
  cluster.run(shooters, opts);
  const auto reads0 = cluster.server(0).read_count();
  const auto reads1 = cluster.server(1).read_count();
  EXPECT_EQ(reads0 + reads1, 8000u);
  // Round-robin replica choice: close to an even split.
  EXPECT_NEAR(static_cast<double>(reads0), 4000.0, 400.0);
}

TEST(ClusterPartition, ThroughputScalesWithPartitioning) {
  // RF=1 on two nodes splits both reads and writes: it should beat a single
  // node under the same two-shooter load.
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.5);
  spec.initial_keys = 10000;
  RunOptions opts;
  opts.ops = 10000;

  auto run_with = [&](int nodes, int rf) {
    Cluster cluster(Config::defaults(), nodes, rf);
    workload::Generator preload_gen(spec, 1);
    cluster.preload(preload_gen.preload_keys(), spec.value_bytes);
    std::vector<workload::Generator> shooters;
    for (int s = 0; s < 2; ++s) shooters.emplace_back(spec, 100 + s);
    return cluster.run(shooters, opts).throughput_ops;
  };
  EXPECT_GT(run_with(2, 1), run_with(1, 1) * 1.5);
}

TEST(ScyllaModel, FluctuationDeterministicPerSeed) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.7);
  spec.initial_keys = 10000;
  auto run_with_seed = [&](std::uint64_t fluctuation_seed) {
    workload::Generator generator(spec, 3);
    ScyllaServer server(Config::defaults(), {}, fluctuation_seed);
    server.preload(generator.preload_keys(), spec.value_bytes);
    RunOptions opts;
    opts.ops = 30000;
    return server.run(generator, opts).throughput_ops;
  };
  // Identical seeds reproduce exactly; distinct seeds only diverge once a
  // dip window actually lands inside the run, so no inequality is asserted.
  EXPECT_DOUBLE_EQ(run_with_seed(42), run_with_seed(42));
}

TEST(ScyllaModel, HonoursCompactionMethod) {
  // CM is NOT in the ignored set: switching it must change behaviour.
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(0.9);
  spec.initial_keys = 15000;
  auto probes_with = [&](int cm) {
    workload::Generator generator(spec, 3);
    ScyllaServer server(Config::defaults().with(ParamId::kCompactionMethod, cm));
    server.preload(generator.preload_keys(), spec.value_bytes);
    RunOptions opts;
    opts.ops = 15000;
    return server.run(generator, opts).avg_sstables_probed;
  };
  EXPECT_LT(probes_with(1), probes_with(0));
}

}  // namespace
}  // namespace rafiki::engine
