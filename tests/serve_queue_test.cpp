// BoundedQueue: the serve layer's admission-control primitive. The contract
// under test — a full queue rejects immediately (never blocks the producer),
// FIFO ordering, close() wakes blocked consumers and drains the backlog —
// is what the service's Overloaded / ShuttingDown semantics are built on.
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/queue.h"

namespace rafiki::serve {
namespace {

TEST(BoundedQueue, RejectsWhenFullWithoutBlocking) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(PushResult::kOk, queue.try_push(1));
  EXPECT_EQ(PushResult::kOk, queue.try_push(2));
  EXPECT_EQ(PushResult::kOk, queue.try_push(3));
  EXPECT_EQ(queue.size(), 3u);

  // Admission control: the fourth push returns immediately with false.
  EXPECT_EQ(queue.try_push(4), PushResult::kFull);
  EXPECT_EQ(queue.size(), 3u);

  // Draining one slot re-opens admission.
  EXPECT_EQ(queue.try_pop().value(), 1);
  EXPECT_EQ(PushResult::kOk, queue.try_push(4));
  EXPECT_EQ(queue.try_push(5), PushResult::kFull);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) {
    int item = i;
    ASSERT_EQ(PushResult::kOk, queue.try_push(std::move(item)));
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(queue.try_pop().value(), i);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(PushResult::kOk, queue.try_push(1));
  EXPECT_EQ(queue.try_push(2), PushResult::kFull);
}

TEST(BoundedQueue, CloseRejectsNewWorkButDrainsBacklog) {
  BoundedQueue<int> queue(4);
  ASSERT_EQ(PushResult::kOk, queue.try_push(10));
  ASSERT_EQ(PushResult::kOk, queue.try_push(11));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.try_push(12), PushResult::kClosed);

  // Consumers still see everything queued before the close, then nullopt.
  EXPECT_EQ(queue.pop().value(), 10);
  EXPECT_EQ(queue.pop().value(), 11);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, PushReportsClosedOverFullAtomically) {
  // Regression for the submit-path TOCTOU: the rejection reason must come
  // from the failed push itself, not a separate closed() probe. A queue that
  // is both full and closed reports kClosed; full-but-open reports kFull.
  BoundedQueue<int> queue(1);
  ASSERT_EQ(PushResult::kOk, queue.try_push(1));
  EXPECT_EQ(queue.try_push(2), PushResult::kFull);
  queue.close();
  EXPECT_EQ(queue.try_push(3), PushResult::kClosed);
  // Draining does not reopen admission once closed.
  EXPECT_EQ(queue.try_pop().value(), 1);
  EXPECT_EQ(queue.try_push(4), PushResult::kClosed);
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(2);
  std::vector<std::thread> consumers;
  std::vector<std::optional<int>> results(3);
  for (std::size_t i = 0; i < results.size(); ++i) {
    consumers.emplace_back([&queue, &results, i] { results[i] = queue.pop(); });
  }
  ASSERT_EQ(PushResult::kOk, queue.try_push(7));
  queue.close();
  for (auto& consumer : consumers) consumer.join();

  int delivered = 0;
  for (const auto& result : results) {
    if (result.has_value()) {
      EXPECT_EQ(*result, 7);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 1);
}

TEST(BoundedQueue, PopUntilTimesOutEmptyHanded) {
  BoundedQueue<int> queue(2);
  // det:ok(wall-clock): pop_until takes a real steady_clock deadline by design
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_FALSE(queue.pop_until(deadline).has_value());
}

TEST(BoundedQueue, PopUntilReturnsItemArrivingBeforeDeadline) {
  BoundedQueue<int> queue(2);
  std::thread producer([&queue] { ASSERT_EQ(PushResult::kOk, queue.try_push(42)); });
  // det:ok(wall-clock): pop_until takes a real steady_clock deadline by design
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  EXPECT_EQ(queue.pop_until(deadline).value(), 42);
  producer.join();
}

TEST(BoundedQueue, RejectedPushLeavesItemIntact) {
  // The sharded spill contract: try_push moves from its argument ONLY on
  // kOk, so a rejected item (move-only payload included) can be retried on a
  // sibling queue without ever being copied — and without arriving there
  // moved-from.
  BoundedQueue<std::unique_ptr<int>> full(1);
  ASSERT_EQ(PushResult::kOk, full.try_push(std::make_unique<int>(1)));

  auto payload = std::make_unique<int>(42);
  EXPECT_EQ(full.try_push(std::move(payload)), PushResult::kFull);
  ASSERT_NE(payload, nullptr) << "kFull must not consume the item";
  EXPECT_EQ(*payload, 42);

  BoundedQueue<std::unique_ptr<int>> closed(1);
  closed.close();
  EXPECT_EQ(closed.try_push(std::move(payload)), PushResult::kClosed);
  ASSERT_NE(payload, nullptr) << "kClosed must not consume the item";
  EXPECT_EQ(*payload, 42);

  // The spill destination gets the original, intact.
  BoundedQueue<std::unique_ptr<int>> sibling(1);
  EXPECT_EQ(PushResult::kOk, sibling.try_push(std::move(payload)));
  EXPECT_EQ(payload, nullptr);
  EXPECT_EQ(**sibling.try_pop(), 42);
}

TEST(BoundedQueue, PopUntilDrainsRemainingItemsAfterTimeout) {
  // Regression: a pop_until whose wait ends by timeout must still return
  // anything already queued — the final take runs under the lock after the
  // wait loop, so a timeout racing an arrival drains, never drops. An
  // already-expired deadline is the deterministic worst case.
  BoundedQueue<int> queue(4);
  ASSERT_EQ(PushResult::kOk, queue.try_push(1));
  ASSERT_EQ(PushResult::kOk, queue.try_push(2));
  // det:ok(wall-clock): pop_until takes a real steady_clock deadline by design
  const auto expired = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(queue.pop_until(expired).value(), 1);
  EXPECT_EQ(queue.pop_until(expired).value(), 2);
  EXPECT_FALSE(queue.pop_until(expired).has_value());

  // Same contract across a close(): the backlog outlives the timeout path.
  ASSERT_EQ(PushResult::kOk, queue.try_push(3));
  queue.close();
  EXPECT_EQ(queue.pop_until(expired).value(), 3);
  EXPECT_FALSE(queue.pop_until(expired).has_value());
}

TEST(BoundedQueue, ApproxSizeTracksLockedSize) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(queue.approx_size(), 0u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(PushResult::kOk, queue.try_push(std::move(i)));
    EXPECT_EQ(queue.approx_size(), queue.size());
  }
  (void)queue.try_pop();
  EXPECT_EQ(queue.approx_size(), 4u);
}

TEST(BoundedQueue, ConcurrentProducersConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> queue(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        // try_push moves only on kOk, so retrying the same lvalue is sound.
        while (queue.try_push(std::move(item)) != PushResult::kOk) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::thread> consumers;
  std::vector<std::vector<int>> received(3);
  for (std::size_t c = 0; c < received.size(); ++c) {
    consumers.emplace_back([&queue, &received, c] {
      while (auto item = queue.pop()) received[c].push_back(*item);
    });
  }

  for (auto& producer : producers) producer.join();
  queue.close();
  for (auto& consumer : consumers) consumer.join();

  std::vector<int> seen(kProducers * kPerProducer, 0);
  for (const auto& per_consumer : received) {
    for (int item : per_consumer) ++seen[static_cast<std::size_t>(item)];
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "item " << i;
  }
}

}  // namespace
}  // namespace rafiki::serve
