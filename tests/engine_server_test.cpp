#include <gtest/gtest.h>

#include "collect/runner.h"
#include "engine/server.h"
#include "workload/generator.h"

namespace rafiki::engine {
namespace {

workload::Generator make_generator(double rr, std::uint64_t seed = 7) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(rr);
  spec.initial_keys = 20000;
  return workload::Generator(spec, seed);
}

RunStats quick_run(const Config& config, double rr, std::size_t ops = 30000,
                   std::uint64_t seed = 7) {
  Server server(config);
  auto generator = make_generator(rr, seed);
  server.preload(generator.preload_keys(), generator.spec().value_bytes);
  RunOptions opts;
  opts.ops = ops;
  opts.seed = seed;
  return server.run(generator, opts);
}

TEST(Server, ThroughputIsPositiveAndFinite) {
  const auto stats = quick_run(Config::defaults(), 0.5);
  EXPECT_GT(stats.throughput_ops, 1000.0);
  EXPECT_LT(stats.throughput_ops, 1e7);
  EXPECT_TRUE(std::isfinite(stats.throughput_ops));
  EXPECT_EQ(stats.ops, 30000u);
}

TEST(Server, DeterministicForSameSeed) {
  const auto a = quick_run(Config::defaults(), 0.4, 20000, 42);
  const auto b = quick_run(Config::defaults(), 0.4, 20000, 42);
  EXPECT_DOUBLE_EQ(a.throughput_ops, b.throughput_ops);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.compactions, b.compactions);
}

TEST(Server, DefaultThroughputDecreasesWithReadRatio) {
  // Figure 4 / Section 4.4: the write-optimized default degrades
  // monotonically (within tolerance) as the workload becomes read-heavy,
  // with a swing above 40%.
  std::vector<double> curve;
  for (double rr : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    curve.push_back(quick_run(Config::defaults(), rr).throughput_ops);
  }
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i], curve[i - 1] * 1.03) << "at step " << i;
  }
  EXPECT_GT(curve.front(), curve.back() * 1.4);
}

TEST(Server, WritesTriggerFlushesAndCompactions) {
  const auto stats = quick_run(Config::defaults(), 0.0, 60000);
  EXPECT_GT(stats.flushes, 5u);
  EXPECT_GT(stats.final_sstable_count, 5u);
  EXPECT_GE(stats.max_sstable_count, stats.final_sstable_count);
}

TEST(Server, LeveledKeepsReadAmplificationLower) {
  const auto st = quick_run(Config::defaults(), 0.9);
  const auto leveled =
      quick_run(Config::defaults().with(ParamId::kCompactionMethod, 1), 0.9);
  EXPECT_LT(leveled.avg_sstables_probed, st.avg_sstables_probed);
}

TEST(Server, LeveledInvariantHoldsAfterSustainedWrites) {
  Config config = Config::defaults().with(ParamId::kCompactionMethod, 1);
  Server server(config);
  auto generator = make_generator(0.1, 3);
  server.preload(generator.preload_keys(), generator.spec().value_bytes);
  RunOptions opts;
  opts.ops = 60000;
  server.run(generator, opts);
  EXPECT_TRUE(leveled_invariant_holds(server.sstables()));
}

TEST(Server, BiggerFileCacheImprovesHitRate) {
  const auto small = quick_run(Config::defaults().with(ParamId::kFileCacheSizeMb, 64), 0.9);
  const auto large = quick_run(Config::defaults().with(ParamId::kFileCacheSizeMb, 2048), 0.9);
  EXPECT_GT(large.file_cache_hit_rate, small.file_cache_hit_rate + 0.1);
  EXPECT_GT(large.throughput_ops, small.throughput_ops);
}

TEST(Server, LowMemtableThresholdFlushesMoreOften) {
  const auto low =
      quick_run(Config::defaults().with(ParamId::kMemtableCleanupThreshold, 0.05), 0.0);
  const auto high =
      quick_run(Config::defaults().with(ParamId::kMemtableCleanupThreshold, 0.8), 0.0);
  EXPECT_GT(low.flushes, 2 * high.flushes);
}

TEST(Server, VeryLowConcurrentWritesThrottlesWriteHeavy) {
  const auto low = quick_run(Config::defaults().with(ParamId::kConcurrentWrites, 8), 0.0);
  const auto normal = quick_run(Config::defaults(), 0.0);
  EXPECT_LT(low.throughput_ops, normal.throughput_ops * 0.75);
}

TEST(Server, RowCacheHelpsWhenReuseIsTight) {
  workload::WorkloadSpec spec = workload::WorkloadSpec::with_read_ratio(1.0);
  spec.initial_keys = 20000;
  spec.krd_mean = 300.0;  // tight reuse: row cache becomes valuable
  auto run_with = [&](int row_cache_mb) {
    workload::Generator generator(spec, 5);
    Server server(Config::defaults().with(ParamId::kRowCacheSizeMb, row_cache_mb));
    server.preload(generator.preload_keys(), spec.value_bytes);
    RunOptions opts;
    opts.ops = 30000;
    return server.run(generator, opts).throughput_ops;
  };
  EXPECT_GT(run_with(1024), run_with(0) * 1.02);
}

TEST(Server, MeasurementNoiseIsBounded) {
  Config config;
  auto generator = make_generator(0.5, 9);
  Server server(config);
  server.preload(generator.preload_keys(), generator.spec().value_bytes);
  RunOptions opts;
  opts.ops = 10000;
  opts.measurement_noise_sd = 0.05;
  opts.seed = 11;
  const auto noisy = server.run(generator, opts).throughput_ops;
  EXPECT_GT(noisy, 0.0);
}

TEST(Server, WindowRecordingCoversRun) {
  Config config;
  auto generator = make_generator(0.3, 13);
  Server server(config);
  server.preload(generator.preload_keys(), generator.spec().value_bytes);
  RunOptions opts;
  opts.ops = 50000;
  opts.record_windows = true;
  opts.window_s = 0.1;
  const auto stats = server.run(generator, opts);
  ASSERT_GT(stats.window_throughput.size(), 3u);
  // Window means should average out near the run mean.
  double sum = 0.0;
  for (double w : stats.window_throughput) sum += w;
  const double window_mean = sum / static_cast<double>(stats.window_throughput.size());
  EXPECT_NEAR(window_mean, stats.throughput_ops, stats.throughput_ops * 0.25);
}

TEST(Server, PreloadTwiceThrows) {
  Server server(Config::defaults());
  const std::vector<std::int64_t> keys = {1, 2, 3};
  server.preload(keys, 100);
  EXPECT_THROW(server.preload(keys, 100), std::logic_error);
}

TEST(Server, BindingFractionsSumToOne) {
  const auto stats = quick_run(Config::defaults(), 0.5);
  double total = 0.0;
  for (double f : stats.binding_fractions) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Server, PerfModulationSlowsThroughput) {
  Config config;
  auto g1 = make_generator(0.5, 21);
  Server fast(config);
  fast.preload(g1.preload_keys(), g1.spec().value_bytes);
  RunOptions opts;
  opts.ops = 20000;
  const double base = fast.run(g1, opts).throughput_ops;

  auto g2 = make_generator(0.5, 21);
  Server slow(config);
  slow.preload(g2.preload_keys(), g2.spec().value_bytes);
  slow.set_perf_modulation([](double) { return 2.0; });
  const double modulated = slow.run(g2, opts).throughput_ops;
  EXPECT_LT(modulated, base * 0.7);
}

/// Property sweep: every registered parameter, at its min, default and max,
/// yields a healthy run at a mixed workload — no parameter setting may hang,
/// crash or produce nonsense.
class ParamDomainTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParamDomainTest, ExtremesProduceFiniteThroughput) {
  const auto& spec = param_registry()[GetParam()];
  for (double value : {spec.lo, spec.def, spec.hi}) {
    const auto config = Config::defaults().with(spec.id, value);
    const auto stats = quick_run(config, 0.5, 8000);
    EXPECT_GT(stats.throughput_ops, 500.0)
        << spec.name << " = " << value;
    EXPECT_TRUE(std::isfinite(stats.throughput_ops)) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllParams, ParamDomainTest,
                         ::testing::Range<std::size_t>(0, kParamCount),
                         [](const auto& param_info) {
                           return std::string(
                               param_registry()[param_info.param].name);
                         });

/// Property sweep: the config snap/feasible helpers respect every domain.
class ParamSpecTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParamSpecTest, SnapAndFeasibleAgree) {
  const auto& spec = param_registry()[GetParam()];
  EXPECT_TRUE(spec.feasible(spec.def)) << spec.name << " default infeasible";
  EXPECT_TRUE(spec.feasible(spec.snap(spec.lo - 100)));
  EXPECT_TRUE(spec.feasible(spec.snap(spec.hi + 100)));
  EXPECT_DOUBLE_EQ(spec.snap(spec.lo - 100), spec.lo);
  EXPECT_DOUBLE_EQ(spec.snap(spec.hi + 100), spec.hi);
  // Qualified: gtest's TestWithParam also exposes a ParamType typedef.
  if (spec.type != rafiki::engine::ParamType::kReal) {
    const double mid = (spec.lo + spec.hi) / 2.0 + 0.37;
    EXPECT_DOUBLE_EQ(spec.snap(mid), std::round(mid));
  }
}

INSTANTIATE_TEST_SUITE_P(AllParams, ParamSpecTest,
                         ::testing::Range<std::size_t>(0, kParamCount),
                         [](const auto& param_info) {
                           return std::string(
                               param_registry()[param_info.param].name);
                         });

TEST(Config, DefaultsMatchRegistry) {
  const auto config = Config::defaults();
  for (const auto& spec : param_registry()) {
    EXPECT_DOUBLE_EQ(config.get(spec.id), spec.def) << spec.name;
  }
}

TEST(Config, KeyVectorRoundTrips) {
  auto config = Config::defaults()
                    .with(ParamId::kCompactionMethod, 1)
                    .with(ParamId::kConcurrentWrites, 64)
                    .with(ParamId::kMemtableCleanupThreshold, 0.5);
  const auto vec = config.key_vector();
  ASSERT_EQ(vec.size(), 5u);
  const auto rebuilt = Config::from_key_vector(vec);
  EXPECT_EQ(rebuilt, config);
}

TEST(Config, ToStringListsOnlyNonDefaults) {
  EXPECT_EQ(Config::defaults().to_string(), "{}");
  const auto text =
      Config::defaults().with(ParamId::kConcurrentWrites, 64).to_string();
  EXPECT_EQ(text, "{concurrent_writes=64}");
}

TEST(Config, SetSnapsIntoDomain) {
  auto config = Config::defaults();
  config.set(ParamId::kConcurrentWrites, 10000.0);
  EXPECT_DOUBLE_EQ(config.get(ParamId::kConcurrentWrites),
                   param_spec(ParamId::kConcurrentWrites).hi);
  config.set(ParamId::kMemtableCleanupThreshold, -5.0);
  EXPECT_DOUBLE_EQ(config.get(ParamId::kMemtableCleanupThreshold),
                   param_spec(ParamId::kMemtableCleanupThreshold).lo);
}

TEST(Params, FindByName) {
  EXPECT_EQ(find_param("compaction_method"), ParamId::kCompactionMethod);
  EXPECT_EQ(find_param("no_such_param"), ParamId::kCount);
  EXPECT_EQ(param_name(ParamId::kFileCacheSizeMb), "file_cache_size_in_mb");
}

TEST(Params, KeyParamsAreThePaperFive) {
  const auto& keys = key_params();
  ASSERT_EQ(keys.size(), 5u);
  EXPECT_EQ(keys[0], ParamId::kCompactionMethod);
  EXPECT_EQ(keys[1], ParamId::kConcurrentWrites);
  EXPECT_EQ(keys[2], ParamId::kFileCacheSizeMb);
  EXPECT_EQ(keys[3], ParamId::kMemtableCleanupThreshold);
  EXPECT_EQ(keys[4], ParamId::kConcurrentCompactors);
}

}  // namespace
}  // namespace rafiki::engine
