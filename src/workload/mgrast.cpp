#include "workload/mgrast.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"
#include "workload/generator.h"

namespace rafiki::workload {
namespace {

enum class Regime { kReadHeavy, kMixed, kWriteBurst };

Regime pick_regime(Rng& rng, const MgRastTraceOptions& options, Regime current) {
  // Re-draw until the regime actually changes so transitions are abrupt
  // rather than self-loops that merely re-sample the same band.
  for (;;) {
    const double u = rng.uniform();
    Regime next;
    if (u < options.p_read_heavy) {
      next = Regime::kReadHeavy;
    } else if (u < options.p_read_heavy + options.p_mixed) {
      next = Regime::kMixed;
    } else {
      next = Regime::kWriteBurst;
    }
    if (next != current) return next;
  }
}

double dwell_windows(Rng& rng, double mean) {
  // Geometric holding time with the given mean, at least one window.
  return std::max(1.0, std::round(rng.exponential(mean)));
}

double regime_rr(Rng& rng, const MgRastTraceOptions& options, Regime regime) {
  switch (regime) {
    case Regime::kReadHeavy:
      return rng.uniform(options.read_heavy_lo, options.read_heavy_hi);
    case Regime::kMixed:
      return rng.uniform(options.mixed_lo, options.mixed_hi);
    case Regime::kWriteBurst:
      return rng.uniform(options.write_burst_lo, options.write_burst_hi);
  }
  return 0.5;
}

}  // namespace

std::vector<TraceWindow> synthesize_mgrast_windows(const MgRastTraceOptions& options,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceWindow> windows;
  const auto n_windows =
      static_cast<std::size_t>(options.duration_s / options.window_s);
  windows.reserve(n_windows);

  Regime regime = Regime::kReadHeavy;
  double remaining = dwell_windows(rng, options.read_heavy_dwell);
  double rr = regime_rr(rng, options, regime);

  for (std::size_t w = 0; w < n_windows; ++w) {
    if (remaining <= 0.0) {
      regime = pick_regime(rng, options, regime);
      const double dwell = regime == Regime::kReadHeavy ? options.read_heavy_dwell
                           : regime == Regime::kMixed   ? options.mixed_dwell
                                                        : options.write_burst_dwell;
      remaining = dwell_windows(rng, dwell);
      rr = regime_rr(rng, options, regime);
    }
    // Small within-regime jitter; regime switches remain the dominant moves.
    const double jitter = rng.gaussian(0.0, 0.02);
    windows.push_back({static_cast<double>(w) * options.window_s,
                       std::clamp(rr + jitter, 0.0, 1.0)});
    remaining -= 1.0;
  }
  return windows;
}

std::vector<TraceRecord> synthesize_mgrast_queries(const std::vector<TraceWindow>& windows,
                                                   std::size_t queries_per_window,
                                                   const WorkloadSpec& base_spec,
                                                   double window_s,
                                                   std::uint64_t seed,
                                                   double burst_mean_queries) {
  std::vector<TraceRecord> records;
  records.reserve(windows.size() * queries_per_window);
  Generator generator(base_spec, seed);
  Rng burst_rng(seed ^ 0xb5157b5157ull);
  std::size_t burst_remaining = 0;
  for (const auto& window : windows) {
    const double dt = window_s / static_cast<double>(queries_per_window);
    burst_remaining = 0;  // regime changes cut bursts short
    for (std::size_t q = 0; q < queries_per_window; ++q) {
      if (burst_remaining == 0) {
        // New pipeline-job burst: all reads or all writes for its duration.
        burst_remaining = 1 + static_cast<std::size_t>(
                                  burst_rng.exponential(burst_mean_queries));
        generator.set_read_ratio(burst_rng.bernoulli(window.read_ratio) ? 1.0 : 0.0);
      }
      --burst_remaining;
      records.push_back(
          {window.t_start_s + dt * static_cast<double>(q), generator.next()});
    }
  }
  return records;
}

std::string trace_to_csv(const std::vector<TraceRecord>& records) {
  std::string out = "t_s,kind,key,bytes\n";
  char line[96];
  for (const auto& record : records) {
    std::snprintf(line, sizeof line, "%.3f,%d,%lld,%u\n", record.t_s,
                  static_cast<int>(record.op.kind),
                  static_cast<long long>(record.op.key), record.op.value_bytes);
    out += line;
  }
  return out;
}

std::vector<TraceRecord> parse_trace_csv(const std::string& csv) {
  std::vector<TraceRecord> records;
  std::istringstream in(csv);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    TraceRecord record;
    int kind = 0;
    long long key = 0;
    unsigned bytes = 0;
    if (std::sscanf(line.c_str(), "%lf,%d,%lld,%u", &record.t_s, &kind, &key, &bytes) != 4) {
      throw std::invalid_argument("parse_trace_csv: malformed line: " + line);
    }
    if (kind < 0 || kind > 2) {
      throw std::invalid_argument("parse_trace_csv: bad op kind in: " + line);
    }
    record.op.kind = static_cast<Op::Kind>(kind);
    record.op.key = key;
    record.op.value_bytes = bytes;
    records.push_back(record);
  }
  return records;
}

}  // namespace rafiki::workload
