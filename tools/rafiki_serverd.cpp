// rafiki_serverd — standalone serving daemon: trains a small surrogate
// pipeline, publishes the snapshot, and serves the RPC protocol until stdin
// closes (or EOF in a pipe), then drains gracefully and prints the stats
// tables. The counterpart of tools/rafiki_client.
//
//   rafiki_serverd [--port P] [--host H] [--io-threads N] [--workers N]
//                  [--shards N] [--full]
//
// --shards N (N > 1) serves through the ShardedTuningService router —
// per-read-ratio-band shards, each with its own queue/workers/batcher — and
// prints the cross-shard merged stats table on drain.
//
// The default training profile is the CI smoke profile (seconds); --full
// trains the mid-sized ensemble the benches use (minutes).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/online.h"
#include "core/rafiki.h"
#include "engine/params.h"
#include <memory>

#include "net/server.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "serve/snapshot.h"

using namespace rafiki;

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7117;
  std::size_t io_threads = 2;
  std::size_t workers = 2;
  std::size_t shards = 1;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--io-threads" && i + 1 < argc) {
      io_threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--full") {
      full = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host H] [--port P] [--io-threads N] "
                   "[--workers N] [--shards N] [--full]\n",
                   argv[0]);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "invalid port %d\n", port);
    return 2;
  }

  core::RafikiOptions options;
  options.workload_grid = full ? std::vector<double>{0.1, 0.5, 0.9}
                               : std::vector<double>{0.2, 0.8};
  options.n_configs = full ? 10 : 5;
  options.collect.measure.ops = full ? 20000 : 3000;
  options.collect.measure.warmup_ops = full ? 2000 : 300;
  options.ensemble.n_nets = full ? 10 : 3;
  options.ensemble.train.max_epochs = full ? 100 : 30;
  std::printf("training the surrogate ensemble (%s profile)...\n",
              full ? "full" : "smoke");
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  rafiki.train(rafiki.collect());
  if (!rafiki.trained()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  serve::ServiceOptions service_options;
  service_options.workers = workers;
  core::OnlineTuner tuner(rafiki);
  std::unique_ptr<serve::TuningBackend> backend;
  if (shards > 1) {
    serve::ShardOptions shard_options;
    shard_options.shards = shards;
    shard_options.service = service_options;
    backend = std::make_unique<serve::ShardedTuningService>(shard_options);
  } else {
    backend = std::make_unique<serve::TuningService>(service_options);
  }
  serve::TuningBackend& service = *backend;
  service.publish(serve::make_snapshot(rafiki));
  service.attach_tuner(tuner);
  service.start();

  net::ServerOptions server_options;
  server_options.host = host;
  server_options.port = static_cast<std::uint16_t>(port);
  server_options.io_threads = io_threads;
  net::Server server(service, server_options);
  if (!server.start()) {
    std::fprintf(stderr, "server start failed: %s\n", server.last_error().c_str());
    service.stop();
    return 1;
  }
  std::printf("serving on %s:%u (model version %llu, %zu shard%s); "
              "close stdin to stop\n",
              host.c_str(), server.port(),
              static_cast<unsigned long long>(service.model_version()), shards,
              shards == 1 ? "" : "s");
  std::fflush(stdout);

  // Serve until stdin closes — works interactively (Ctrl-D), under a pipe,
  // and under process supervisors that hold stdin open for the lifetime.
  char buffer[256];
  while (std::fgets(buffer, sizeof buffer, stdin) != nullptr) {
  }

  std::printf("draining...\n");
  server.stop();
  service.stop();

  // stats_table() merges across shards for the sharded backend; wire-level
  // telemetry always lives in the backend's front-end stats object.
  std::printf("\n=== request stats ===\n%s", service.stats_table().render().c_str());
  std::printf("\n=== wire stats ===\n%s", service.stats().wire_table().render().c_str());
  return 0;
}
