# Empty compiler generated dependencies file for table1_minmax.
# This may be replaced when dependencies are built.
