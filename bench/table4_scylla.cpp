// Table 4 + Section 4.10: tuning ScyllaDB. The internal auto-tuner ignores
// several user parameters, so Rafiki's ScyllaDB parameter selection strips
// those from the Cassandra ANOVA ranking and refills by variance until five
// parameters remain; the achievable gains are much smaller than for
// Cassandra (the auto-tuner already covers part of the headroom).
#include <cstdio>

#include "bench/common.h"
#include "collect/runner.h"
#include "engine/scylla.h"
#include "opt/baselines.h"

using namespace rafiki;

int main() {
  auto options = benchutil::paper_options(/*scylla=*/true);
  options.key_param_count = 5;
  // ScyllaDB's auto-tuner fluctuations (Figure 10) average out only over
  // long windows; match the paper's 5-minute measurements by doubling the
  // per-point operation budget.
  options.collect.measure.ops = 160000;
  core::Rafiki rafiki(options);

  benchutil::note("running the ScyllaDB parameter-selection procedure (Section 4.10)...");
  const auto& params = rafiki.select_key_params();
  std::string selected;
  for (auto id : params) {
    if (!selected.empty()) selected += ", ";
    selected += std::string(engine::param_name(id));
  }
  benchutil::note("selected ScyllaDB key parameters: " + selected);
  bool contains_ignored = false;
  for (auto id : params) {
    const auto& ignored = engine::ScyllaServer::ignored_params();
    contains_ignored |= std::find(ignored.begin(), ignored.end(), id) != ignored.end();
  }

  benchutil::note("collecting ScyllaDB training data...");
  rafiki.train(rafiki.collect());

  collect::MeasureOptions verify = options.collect.measure;
  verify.seed = 515151;
  auto measure_at = [&](const engine::Config& config, double rr) {
    workload::WorkloadSpec workload = options.base_workload;
    workload.read_ratio = rr;
    return collect::measure_throughput(config, workload, verify);
  };

  const auto space = rafiki.key_space();
  Table table({"opt technique", "WL1 (R=70%) ops/s", "gain", "WL2 (R=100%) ops/s", "gain"});
  std::vector<std::string> rafiki_cells = {"Rafiki"}, grid_cells = {"Grid"};
  double rafiki_gain[2] = {0, 0}, grid_gain[2] = {0, 0};
  int col = 0;
  for (double rr : {0.7, 1.0}) {
    const double fallback = measure_at(engine::Config::defaults(), rr);
    const auto optimized = rafiki.optimize(rr);
    const double tuned = measure_at(optimized.config, rr);

    // Grid reference over the selected space (~72 live measurements).
    const std::vector<std::size_t> levels = {2, 2, 3, 3, 2};
    const auto grid = opt::grid_search(
        space,
        [&](std::span<const double> point) {
          return measure_at(
              engine::Config::from_vector(params, {point.begin(), point.end()}), rr);
        },
        levels);

    rafiki_gain[col] = 100.0 * (tuned - fallback) / fallback;
    grid_gain[col] = 100.0 * (grid.best_fitness - fallback) / fallback;
    rafiki_cells.push_back(Table::ops(tuned));
    rafiki_cells.push_back(Table::pct(rafiki_gain[col]));
    grid_cells.push_back(Table::ops(grid.best_fitness));
    grid_cells.push_back(Table::pct(grid_gain[col]));
    ++col;
  }
  table.add_row(rafiki_cells);
  table.add_row(grid_cells);
  benchutil::emit(table, "Table 4: ScyllaDB — Rafiki vs grid search");

  benchutil::compare("selection avoids auto-tuned params", "ignored params stripped",
                     contains_ignored ? "FAILED: ignored param selected" : "yes");
  benchutil::compare("Rafiki gain @R=70%", "12.29% (grid 21.8%)",
                     Table::pct(rafiki_gain[0]) + " (grid " + Table::pct(grid_gain[0]) + ")");
  benchutil::compare("Rafiki gain @R=100%", "9% (grid 4.57%)",
                     Table::pct(rafiki_gain[1]) + " (grid " + Table::pct(grid_gain[1]) + ")");
  benchutil::compare("ScyllaDB gains smaller than Cassandra's 41%", "yes (self-tuning)",
                     std::max(rafiki_gain[0], rafiki_gain[1]) < 30.0 ? "yes" : "NO");
  return 0;
}
