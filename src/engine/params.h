// Configuration-parameter registry for the simulated Cassandra-like engine.
//
// The paper (Section 3.4) notes Cassandra exposes 25+ performance-related
// parameters of which ANOVA identifies five "key parameters": Compaction
// Method (CM), Concurrent Writes (CW), file_cache_size_in_mb (FCZ),
// memtable_cleanup_threshold (MT) and Concurrent Compactors (CC). This
// registry models those five plus ~17 secondary parameters with real (but
// weaker) mechanical effects, giving the ANOVA stage a realistic long tail
// to reject (Figure 5).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace rafiki::engine {

enum class ParamId : std::size_t {
  // --- the five key parameters (paper Section 3.4.1) ---
  kCompactionMethod = 0,        // CM: 0 = SizeTiered, 1 = Leveled
  kConcurrentWrites,            // CW: writer thread pool size
  kFileCacheSizeMb,             // FCZ: chunk/buffer cache for SSTable reads
  kMemtableCleanupThreshold,    // MT: flush trigger fraction
  kConcurrentCompactors,        // CC: parallel compaction tasks

  // --- secondary performance parameters ---
  kConcurrentReads,             // reader thread pool size
  kMemtableFlushWriters,        // parallel flush tasks
  kMemtableSpaceMb,             // total memory for all memtables
  kRowCacheSizeMb,              // whole-row cache (0 disables)
  kKeyCacheSizeMb,              // key -> sstable-position cache
  kCommitlogSyncPeriodMs,       // periodic fsync interval
  kCommitlogSegmentSizeMb,      // segment rotation size
  kSstableSizeMb,               // leveled-compaction table size target
  kMinCompactionThreshold,      // size-tiered merge trigger (default 4)
  kMaxCompactionThreshold,      // size-tiered max tables per merge
  kCompactionThroughputMbs,     // background compaction rate throttle
  kBloomFilterFpChance,         // per-sstable bloom filter false-positive rate
  kCompressionChunkKb,          // sstable compression chunk length
  kTrickleFsync,                // 0 = off, 1 = on
  kColumnIndexSizeKb,           // row-index granularity
  kIndexSummaryCapacityMb,      // in-memory index summary budget
  kMemtableAllocationType,      // 0 = heap_buffers, 1 = offheap_buffers

  kCount
};

inline constexpr std::size_t kParamCount = static_cast<std::size_t>(ParamId::kCount);

enum class ParamType { kCategorical, kInteger, kReal };

/// Static description of one tunable parameter: its domain, default and how
/// many levels the one-at-a-time ANOVA sweep should probe.
struct ParamSpec {
  ParamId id{};
  std::string_view name;
  ParamType type = ParamType::kReal;
  double lo = 0.0;
  double hi = 1.0;
  double def = 0.0;
  int anova_levels = 4;
  /// Human-oriented note used by docs/benches.
  std::string_view description;
  /// Canonical knob this parameter is redundant with (kCount = none).
  /// Mirrors Section 4.5: memtable_flush_writers and the memtable space
  /// budget jointly determine flush frequency with memtable_cleanup_threshold,
  /// so only the canonical threshold is eligible for key-parameter selection.
  ParamId redundant_with = ParamId::kCount;

  /// Clamps (and for integer/categorical parameters, rounds) a raw value
  /// into the parameter's domain.
  double snap(double value) const noexcept;
  /// True if the value is inside the domain and integral where required.
  bool feasible(double value) const noexcept;
};

/// The full registry, indexed by ParamId.
const std::array<ParamSpec, kParamCount>& param_registry() noexcept;

const ParamSpec& param_spec(ParamId id) noexcept;

/// The paper's five key parameters, in the order used for the surrogate
/// model's feature vector (CM, CW, FCZ, MT, CC) — Equation (2).
const std::vector<ParamId>& key_params();

/// Name lookups (returns kCount on failure for find_param).
std::string_view param_name(ParamId id) noexcept;
ParamId find_param(std::string_view name) noexcept;

}  // namespace rafiki::engine
