// The concurrent tuning service (the "middleware" in the paper's title, as a
// long-running process): N worker threads answer Predict / Optimize /
// ObserveWindow requests from a bounded MPMC queue against the currently
// published model snapshot.
//
//   * Admission control — a full queue rejects with Overloaded immediately;
//     producers never block past capacity. Each request carries a deadline
//     in injected-clock ticks, checked before execution.
//   * Micro-batching — concurrent Predict requests are coalesced (up to
//     ServiceOptions::max_batch, or a real-time flush window) into a single
//     batched ensemble evaluation (SurrogateEnsemble::predict_batch).
//   * Versioned snapshots — publish() atomically swaps the model behind an
//     atomic shared_ptr; in-flight requests keep the version they started
//     with. A background retrain republishes with zero downtime.
//   * Async retraining — ObserveWindow is stale-while-revalidate: a cache
//     miss answers immediately with the current config (Response::stale set)
//     and enqueues the bucket on a dedicated RetrainWorker thread; the GA
//     never runs on a request-path worker (serve/retrain.h).
//   * Telemetry — per-endpoint latency histograms, QPS / rejection /
//     queue-depth counters, batch-size distribution, retrain queue depth and
//     latency (serve/stats.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "opt/ga.h"
#include "serve/backend.h"
#include "serve/queue.h"
#include "serve/retrain.h"
#include "serve/snapshot.h"
#include "serve/stats.h"
#include "serve/types.h"
#include "util/sync.h"

namespace rafiki::core {
class OnlineTuner;
}

namespace rafiki::serve {

struct ServiceOptions {
  /// Tenant namespaces served by this instance (dense ids [0, tenants)).
  /// Every tenant gets its own snapshot slot, version counter, pending-tuned
  /// table, tuner pointer, and retrain coalescing key-space. 1 (the default)
  /// is exactly the original single-tenant service: tenant 0 is the default
  /// namespace pre-tenant callers land in. 0 is normalized to 1.
  std::size_t tenants = 1;
  /// Worker threads spawned by start(). 0 is valid (and useful in tests):
  /// requests queue deterministically until start() is called with workers.
  /// Inside a ShardedTuningService this is overwritten per shard from the
  /// fleet-level worker budget (ShardOptions::worker_budget) — a shard never
  /// sizes its own pool.
  std::size_t workers = 2;
  /// CPUs to pin worker threads to: worker i lands on
  /// cpu_affinity[i % cpu_affinity.size()]. Empty (the default) = no
  /// pinning. The sharded router fills this per shard when
  /// ShardOptions::pin_shards is set; ignored off Linux.
  std::vector<int> cpu_affinity;
  /// Bounded request queue capacity; the admission-control limit.
  std::size_t queue_capacity = 256;
  /// Micro-batcher: flush a Predict batch at this many coalesced requests...
  std::size_t max_batch = 32;
  /// ...or once this much real time has passed since the batch opened.
  std::chrono::microseconds batch_window{200};
  /// Adaptive flush: run the batch as soon as the queue momentarily empties
  /// instead of sleeping out the remainder of batch_window. Under load the
  /// queue is never empty and batches still fill to max_batch; a lone client
  /// gets queue-depth-1 latency instead of a mandatory window stall. Disable
  /// to get the strict fill-or-time-out batcher (the injected-clock batch
  /// tests use this mode).
  bool adaptive_batch = true;
  /// Virtual clock for request deadlines. Deterministic by construction: the
  /// default never advances, so deadlines never expire unless a clock is
  /// injected (tests drive an atomic counter; a deployment would plug in a
  /// coarse ticker).
  std::function<Tick()> clock_fn;
  /// GA budget for the Optimize endpoint.
  opt::GaOptions ga{};
  StatsOptions stats{};
  /// Background retrain worker (ObserveWindow misses, tuner prefetches).
  RetrainOptions retrain{};
  /// stop(): finish the queued retrain backlog (true) or cancel it (false).
  /// Cancelling is the default — pending optimizations have no waiter once
  /// the service is going down, and a restart simply re-enqueues on the
  /// next stale window.
  bool drain_retrain_on_stop = false;
};

class TuningService : public TuningBackend {
 public:
  explicit TuningService(ServiceOptions options = {});
  ~TuningService() override;

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// See TuningBackend::publish. Fans the snapshot out to every tenant slot
  /// (each slot stamps its own version); returns tenant 0's new version.
  std::uint64_t publish(ModelSnapshot snapshot) override;

  /// Tenant 0's currently published snapshot (null before the first publish).
  std::shared_ptr<const ModelSnapshot> snapshot() const override {
    return registries_[0].get();
  }
  std::uint64_t model_version() const override;

  /// Per-tenant views (null / 0 for an out-of-range tenant).
  std::shared_ptr<const ModelSnapshot> tenant_snapshot(TenantId tenant) const override {
    return tenant < registries_.size() ? registries_[tenant].get() : nullptr;
  }
  std::uint64_t tenant_model_version(TenantId tenant) const override;

  /// Enables the ObserveWindow endpoint. The tuner (which must outlive this
  /// service) becomes stale-while-revalidate: its cache misses and
  /// prefetches are routed to this service's background RetrainWorker, and
  /// its publish hook is pointed at the snapshot registry, so every freshly
  /// optimized config is republished as a new snapshot version. Call before
  /// start().
  void attach_tuner(core::OnlineTuner& tuner) override;

  /// Shard-fleet variant of attach_tuner: makes the shared tuner visible to
  /// this service's ObserveWindow path WITHOUT claiming the tuner's
  /// single-slot publish / async-optimize hooks. The ShardedTuningService
  /// installs fan-out hooks once at the router and then binds the tuner to
  /// every shard through this. Binds tenant 0.
  void bind_tuner(core::OnlineTuner& tuner) { bind_tenant_tuner(0, tuner); }

  /// Binds the tuner serving one tenant namespace (the tenant fleet owns one
  /// OnlineTuner per tenant and binds each to every shard). Pointer only —
  /// the tuner's single-slot hooks stay with whoever installed them.
  void bind_tenant_tuner(TenantId tenant, core::OnlineTuner& tuner);

  /// Directly enqueues a background retrain for tenant 0's `bucket` on this
  /// service's RetrainWorker (the router's async-optimize fan-out target).
  void enqueue_retrain(int bucket, double read_ratio) {
    retrain_.enqueue(retrain_key(0, bucket), read_ratio);
  }
  /// Tenant-qualified retrain: coalesces within the tenant's own key-space,
  /// never against another tenant's run for the same bucket.
  void enqueue_retrain(TenantId tenant, int bucket, double read_ratio) {
    retrain_.enqueue(retrain_key(tenant, bucket), read_ratio);
  }

  /// Publishes one tuned (bucket -> config) entry into tenant 0's slot by
  /// copy-on-write republication of its current snapshot. The single-service
  /// publish hook and the sharded router's fan-out both land here.
  void publish_tuned(int bucket, const engine::Config& config, double predicted) {
    publish_tuned(0, bucket, config, predicted);
  }
  /// Tenant-qualified variant: only `tenant`'s slot is republished; every
  /// other tenant's served snapshot (pointer, version, configs) is untouched.
  void publish_tuned(TenantId tenant, int bucket, const engine::Config& config,
                     double predicted);

  /// See TuningBackend::submit / try_submit.
  std::future<Response> submit(Request request) override;
  Status try_submit(Request request, ResponseCallback done) override;

  /// Spill-friendly admission: moves `done` into the queue ONLY on kOk. On
  /// Overloaded / ShuttingDown the callback is handed back in `done`
  /// exactly as passed, so the sharded router retries sibling shards with
  /// the same callback — zero copies, zero allocations per attempt (the
  /// pre-fix router copied the std::function once per attempt, including
  /// the common no-spill case).
  Status offer(const Request& request, ResponseCallback& done);

  /// Spawns the worker pool (idempotent). Requests submitted before start()
  /// wait in the queue.
  void start() override;
  /// Closes admission, drains the backlog, joins workers. Queued requests
  /// are still answered (drained by the workers, or failed with
  /// ShuttingDown if no worker ever ran). Idempotent.
  void stop() override;

  const ServiceStats& stats() const noexcept override { return stats_; }
  /// Mutable stats handle for front-ends (the net::Server) that fold their
  /// wire-level telemetry into the same sink. ServiceStats is internally
  /// synchronized (lock-free striped atomics).
  ServiceStats& stats() noexcept override { return stats_; }
  Table stats_table() const override { return stats_.table(); }
  ServiceStats::Counters endpoint_counters(Endpoint endpoint) const override {
    return stats_.counters(endpoint);
  }
  ServiceStats::RetrainCounters retrain_counters() const override {
    return stats_.retrain_counters();
  }
  double endpoint_latency_quantile(Endpoint endpoint, double q) const override {
    return stats_.latency_quantile(endpoint, q);
  }
  double mean_batch_size() const override { return stats_.mean_batch_size(); }
  double mean_retrain_latency_us() const override { return stats_.mean_retrain_latency_us(); }
  std::size_t queue_depth() const { return queue_.size(); }
  /// Planned worker-pool size (ServiceOptions::workers after any router
  /// budgeting) — the number start() spawns.
  std::size_t worker_count() const noexcept { return options_.workers; }
  /// Total CPU time burned by worker threads that have exited, in
  /// microseconds. Exact only after stop() has joined the pool; the bench's
  /// per-shard CPU accounting reads it post-drain.
  std::uint64_t worker_cpu_us() const noexcept {
    return worker_cpu_us_.load(std::memory_order_relaxed);
  }
  /// Retrain tasks queued behind the background worker.
  std::size_t retrain_depth() const { return retrain_.depth(); }
  /// Blocks until the background retrain worker is idle — the barrier tests
  /// and benches use to observe the post-republish state.
  void wait_retrain_idle() override { retrain_.wait_idle(); }
  const ServiceOptions& options() const noexcept { return options_; }

 private:
  struct Job {
    Request request;
    /// The single completion channel, armed for every job. submit() adapts
    /// its future through a shared promise inside a callback; jobs no
    /// longer carry an eagerly-allocated std::promise shared state (a heap
    /// allocation per request, paid even on the callback path).
    ResponseCallback done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(std::size_t worker_index);
  void run_single(Job job);
  void run_predict_batch(std::vector<Job> batch);
  void finish(Job& job, Response response);
  Tick now_tick() const { return options_.clock_fn ? options_.clock_fn() : 0; }
  bool expired(const Request& request, Tick now) const {
    return request.deadline != kNoDeadline && now > request.deadline;
  }
  core::OnlineTuner* tuner_for(TenantId tenant) const noexcept {
    return tenant < tuners_.size() ? tuners_[tenant].load(std::memory_order_acquire)
                                   : nullptr;
  }
  std::uint64_t publish_locked(TenantId tenant, ModelSnapshot snapshot)
      REQUIRES(publish_mutex_);

  ServiceOptions options_;
  /// Per-tenant snapshot slots, indexed by TenantId (deque: a
  /// SnapshotRegistry is immovable, and the slot set is fixed at
  /// construction). All slots share publish_mutex_; readers are lock-free.
  std::deque<SnapshotRegistry> registries_;
  Mutex publish_mutex_;
  /// Per-tenant version counters; each tenant's versions are monotonic in
  /// its own slot (publishes to tenant A never advance tenant B).
  std::vector<std::uint64_t> version_counters_ GUARDED_BY(publish_mutex_);
  /// Tuned entries published before any real snapshot exists are parked here
  /// (per tenant) instead of minting a version around a default-constructed,
  /// untrained ModelSnapshot; the tenant's first real publish folds them in.
  std::vector<std::map<int, TunedEntry>> pending_tuned_ GUARDED_BY(publish_mutex_);
  BoundedQueue<Job> queue_;
  ServiceStats stats_;
  RetrainWorker retrain_;
  /// Spawned under lifecycle_mutex_ in start(); joined lock-free in stop()
  /// after the stopped_ handshake (the workers drain the closed queue, so a
  /// join under the lock could wait on threads that are still serving).
  std::vector<std::thread> workers_;
  Mutex lifecycle_mutex_;
  bool started_ GUARDED_BY(lifecycle_mutex_) = false;
  bool stopped_ GUARDED_BY(lifecycle_mutex_) = false;
  /// Summed CPU time of exited workers (relaxed; exact after join).
  std::atomic<std::uint64_t> worker_cpu_us_{0};
  /// Per-tenant tuner pointers, indexed by TenantId; null until bound.
  std::deque<std::atomic<core::OnlineTuner*>> tuners_;
};

}  // namespace rafiki::serve
