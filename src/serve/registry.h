// Atomically-swapped publication slot for immutable artifacts. Readers grab
// a shared_ptr with a single atomic load — they never block behind a
// publisher holding a mutex, and whatever snapshot they grabbed stays alive
// (refcounted) for as long as they use it, however many swaps happen
// meanwhile. This is what lets a background retrain republish a new model
// version with zero downtime for in-flight requests.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace rafiki::serve {

template <typename T>
class VersionedRegistry {
 public:
  /// Current value (may be null before the first publication). The returned
  /// shared_ptr pins that version for the caller's lifetime of use.
  std::shared_ptr<const T> get() const noexcept {
    return slot_.load(std::memory_order_acquire);
  }

  /// Atomically replaces the published value; concurrent readers keep
  /// whatever version they already hold.
  void set(std::shared_ptr<const T> value) noexcept {
    slot_.store(std::move(value), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const T>> slot_{};
};

}  // namespace rafiki::serve
