// Shared setup for the bench harnesses: paper-scale experiment budgets
// (Section 4.2's 20 configurations x 11 workloads protocol) and uniform
// output formatting. Every bench prints the table/figure it reproduces plus
// a short "paper reported vs measured" comparison for EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/rafiki.h"
#include "util/table.h"

namespace rafiki::benchutil {

/// Hardware threads visible to this run — recorded in every BENCH_*.json so
/// a reader can interpret hardware-conditional gates.
inline unsigned hw_threads() { return std::thread::hardware_concurrency(); }

/// Renders a JSON string array, e.g. ["scaling", "ratio"]. Used for the
/// `gates_skipped` field every bench JSON carries: the explicit list of
/// gates this run did NOT check (sanitizer build, too few cores), so
/// "passed" is never conflated with "not checked".
inline std::string json_string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out += "\"" + items[i] + "\"";
    if (i + 1 < items.size()) out += ", ";
  }
  return out + "]";
}

/// The paper's data-collection protocol: 11 read ratios x 20 configurations,
/// 5-minute (simulated) benchmark per point, ~9% of samples lost to harness
/// faults (220 collected -> 200 usable).
inline core::RafikiOptions paper_options(bool scylla = false) {
  core::RafikiOptions options;
  options.n_configs = 20;
  options.collect.measure.ops = 80000;
  options.collect.measure.warmup_ops = 12000;
  options.collect.measure.noise_sd = 0.015;
  options.collect.seed = 20171211;  // Middleware '17 conference date
  options.scylla = scylla;
  options.ensemble.n_nets = 20;
  options.ensemble.train.max_epochs = 200;
  options.ga.population = 48;
  options.ga.generations = 70;
  return options;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void emit(const Table& table, const std::string& title) {
  section(title);
  std::fputs(table.render().c_str(), stdout);
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// One-line paper-vs-measured record, consumed by EXPERIMENTS.md.
inline void compare(const std::string& metric, const std::string& paper,
                    const std::string& measured) {
  std::printf("  [paper-vs-measured] %-46s paper: %-18s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace rafiki::benchutil
