#include "ml/ensemble.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rafiki::ml {

void SurrogateEnsemble::fit(const std::vector<std::vector<double>>& X,
                            std::span<const double> y, const EnsembleOptions& options) {
  if (X.empty() || X.size() != y.size()) {
    throw std::invalid_argument("SurrogateEnsemble::fit: bad training set");
  }
  norm_in_.fit_columns(X);
  norm_out_.fit(y);

  std::vector<std::vector<double>> Xn(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) Xn[i] = norm_in_.map_row(X[i]);
  std::vector<double> yn(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) yn[i] = norm_out_.map(y[i]);

  std::vector<std::size_t> layers;
  layers.push_back(X.front().size());
  layers.insert(layers.end(), options.hidden.begin(), options.hidden.end());
  layers.push_back(1);

  nets_.clear();
  errors_.clear();
  Rng rng(options.seed);
  for (std::size_t k = 0; k < options.n_nets; ++k) {
    Mlp net(layers);
    Rng net_rng = rng.split();
    net.randomize(net_rng);
    const auto result = train_lm_bayes(net, Xn, yn, options.train);
    nets_.push_back(std::move(net));
    errors_.push_back(result.mse);
  }

  // Prune the worst-performing fraction by training error.
  const auto n_prune = static_cast<std::size_t>(
      options.prune_fraction * static_cast<double>(nets_.size()));
  std::vector<std::size_t> order(nets_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return errors_[a] < errors_[b]; });
  active_.assign(nets_.size(), false);
  for (std::size_t i = 0; i + n_prune < order.size(); ++i) active_[order[i]] = true;
}

std::size_t SurrogateEnsemble::active_nets() const noexcept {
  return static_cast<std::size_t>(std::count(active_.begin(), active_.end(), true));
}

double SurrogateEnsemble::predict(std::span<const double> x) const {
  if (nets_.empty()) throw std::logic_error("SurrogateEnsemble::predict: not trained");
  const auto xn = norm_in_.map_row(x);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t k = 0; k < nets_.size(); ++k) {
    if (!active_[k]) continue;
    sum += nets_[k].forward(xn);
    ++count;
  }
  return norm_out_.unmap(sum / static_cast<double>(count ? count : 1));
}

}  // namespace rafiki::ml
