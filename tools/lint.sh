#!/usr/bin/env bash
# Static-analysis driver: clang-tidy over the whole tree (when available) plus
# the custom determinism lint. Exits non-zero on any finding.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir: a configured build with compile_commands.json
#              (default: build-lint, build-default, or build, first that exists;
#               configured automatically if none do)
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

status=0

# --- clang-tidy pass -------------------------------------------------------
clang_tidy_bin=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    clang_tidy_bin="$candidate"
    break
  fi
done

if [[ -z "$clang_tidy_bin" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; skipping clang-tidy pass" >&2
  echo "lint.sh: (install clang-tidy, or use the 'lint' CMake preset on a" >&2
  echo "lint.sh:  machine that has it, to run the full static-analysis gate)" >&2
else
  build_dir="${1:-}"
  if [[ -z "$build_dir" ]]; then
    for d in build-lint build-default build; do
      if [[ -f "$d/compile_commands.json" ]]; then
        build_dir="$d"
        break
      fi
    done
  fi
  if [[ -z "$build_dir" || ! -f "$build_dir/compile_commands.json" ]]; then
    build_dir="build-default"
    echo "lint.sh: configuring $build_dir for compile_commands.json" >&2
    cmake --preset default >/dev/null || exit 1
  fi

  mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'tests/*.cpp' \
                                      'bench/*.cpp' 'examples/*.cpp')
  echo "lint.sh: running $clang_tidy_bin on ${#sources[@]} files (compdb: $build_dir)"
  if ! "$clang_tidy_bin" -p "$build_dir" --warnings-as-errors='*' --quiet \
       "${sources[@]}"; then
    status=1
  fi
fi

# --- custom determinism lint ----------------------------------------------
if ! python3 tools/check_determinism.py; then
  status=1
fi

exit "$status"
