#include "workload/generator.h"

#include <algorithm>
#include <cmath>

namespace rafiki::workload {

Generator::Generator(WorkloadSpec spec, std::uint64_t seed)
    : spec_(spec),
      rng_(seed),
      next_new_key_(static_cast<std::int64_t>(spec.initial_keys)),
      history_cap_(static_cast<std::size_t>(
          std::max(1024.0, 4.0 * spec.krd_mean))) {}

std::vector<std::int64_t> Generator::preload_keys() const {
  std::vector<std::int64_t> keys(spec_.initial_keys);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<std::int64_t>(i);
  return keys;
}

std::int64_t Generator::sample_key() {
  // Draw a target reuse distance; accept the candidate only if the sampled
  // history slot is that key's most recent occurrence, so the realized
  // distance equals the drawn one. A few rejection rounds suffice because
  // duplicates are sparse at MG-RAST-scale reuse distances.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const auto d = static_cast<std::size_t>(rng_.exponential(spec_.krd_mean));
    if (d >= history_.size()) break;
    const std::int64_t candidate = history_[d];
    const auto it = last_access_.find(candidate);
    if (it != last_access_.end() && op_index_ - it->second == d + 1) {
      return candidate;
    }
  }
  // Cold access: a uniformly random live key (large-KRD regime, the common
  // MG-RAST case), or the drawn distance reached past recorded history.
  const auto live = static_cast<std::uint64_t>(next_new_key_);
  return static_cast<std::int64_t>(rng_.bounded(live == 0 ? 1 : live));
}

std::uint32_t Generator::sample_value_bytes() {
  // Log-normal-ish spread around the mean: sequence fragment sizes vary but
  // stay positive; clamp to a sane band so engine accounting stays stable.
  const double v = static_cast<double>(spec_.value_bytes) *
                   std::exp(rng_.gaussian(0.0, 0.35) - 0.0613);  // mean-preserving
  return static_cast<std::uint32_t>(std::clamp(v, 64.0, 1048576.0));
}

void Generator::record_access(std::int64_t key) {
  history_.push_front(key);
  if (history_.size() > history_cap_) history_.pop_back();
  last_access_[key] = op_index_++;
}

Op Generator::next() {
  Op op;
  if (rng_.bernoulli(spec_.read_ratio)) {
    op.kind = Op::Kind::kRead;
    op.key = sample_key();
    op.value_bytes = 0;
  } else if (rng_.bernoulli(spec_.insert_fraction)) {
    op.kind = Op::Kind::kInsert;
    op.key = next_new_key_++;
    op.value_bytes = sample_value_bytes();
  } else if (spec_.delete_fraction > 0.0 &&
             rng_.bernoulli(spec_.delete_fraction /
                            std::max(1e-9, 1.0 - spec_.insert_fraction))) {
    op.kind = Op::Kind::kDelete;
    op.key = sample_key();
    op.value_bytes = 0;
  } else {
    op.kind = Op::Kind::kUpdate;
    op.key = sample_key();
    op.value_bytes = sample_value_bytes();
  }
  record_access(op.key);
  return op;
}

std::vector<Op> Generator::batch(std::size_t n) {
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ops.push_back(next());
  return ops;
}

}  // namespace rafiki::workload
