file(REMOVE_RECURSE
  "CMakeFiles/search_speed.dir/search_speed.cpp.o"
  "CMakeFiles/search_speed.dir/search_speed.cpp.o.d"
  "search_speed"
  "search_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
