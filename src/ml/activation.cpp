// SIMD lanes for the inference hot path: fast_tanh blocks and the dense
// affine layer kernel. Each variant performs the exact operation sequence of
// the scalar code per element — every op used (mul, add, sub, div, min/max,
// integer exponent assembly) is correctly rounded element-wise IEEE-754, so
// lane results are bit-identical to scalar results. This file must be
// compiled with -ffp-contract=off: the AVX targets bring FMA into reach, and
// a contracted mul+add rounds once instead of twice, which would break the
// scalar/batched parity the tests pin down.
#include "ml/activation.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define RAFIKI_X86_DISPATCH 1
#include <immintrin.h>
#else
#define RAFIKI_X86_DISPATCH 0
#endif

namespace rafiki::ml {
namespace {
namespace d = activation_detail;

// One source of truth for the affine loop; the ISA wrappers below inline it
// and let the auto-vectorizer emit wider code for the unit-stride batch
// dimension `r`. The accumulation order per output element (bias, then
// ascending i) never changes, so every wrapper is bit-identical.
__attribute__((always_inline)) inline void affine_body(
    const double* in_t, std::size_t n, std::size_t in_dim, const double* w,
    const double* bias, double* out_t, std::size_t out_dim) {
  for (std::size_t o = 0; o < out_dim; ++o) {
    double* out_row = out_t + o * n;
    const double b = bias[o];
    for (std::size_t r = 0; r < n; ++r) out_row[r] = b;
    const double* w_row = w + o * in_dim;
    for (std::size_t i = 0; i < in_dim; ++i) {
      const double wv = w_row[i];
      const double* in_row = in_t + i * n;
      for (std::size_t r = 0; r < n; ++r) out_row[r] += wv * in_row[r];
    }
  }
}

#if RAFIKI_X86_DISPATCH

__attribute__((target("avx2")))
void tanh_block_avx2(double* values, std::size_t n) {
  const __m256d clamp_hi = _mm256_set1_pd(d::kClamp);
  const __m256d clamp_lo = _mm256_set1_pd(-d::kClamp);
  const __m256d log2e = _mm256_set1_pd(d::kLog2E);
  const __m256d magic = _mm256_set1_pd(d::kRoundMagic);
  const __m256i magic_bits = _mm256_set1_epi64x(d::kRoundMagicBits);
  const __m256d ln2_hi = _mm256_set1_pd(d::kLn2Hi);
  const __m256d ln2_lo = _mm256_set1_pd(d::kLn2Lo);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256i exp_bias = _mm256_set1_epi64x(1023);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d t = _mm256_mul_pd(_mm256_loadu_pd(values + i), _mm256_set1_pd(2.0));
    t = _mm256_min_pd(t, clamp_hi);
    t = _mm256_max_pd(t, clamp_lo);
    __m256d nd = _mm256_add_pd(_mm256_mul_pd(t, log2e), magic);
    const __m256i n64 = _mm256_sub_epi64(_mm256_castpd_si256(nd), magic_bits);
    nd = _mm256_sub_pd(nd, magic);
    __m256d r = _mm256_sub_pd(t, _mm256_mul_pd(nd, ln2_hi));
    r = _mm256_sub_pd(r, _mm256_mul_pd(nd, ln2_lo));
    __m256d p = _mm256_set1_pd(d::kC7);
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(d::kC6));
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(d::kC5));
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(d::kC4));
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(d::kC3));
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(d::kC2));
    p = _mm256_add_pd(_mm256_mul_pd(p, r), one);
    p = _mm256_add_pd(_mm256_mul_pd(p, r), one);
    const __m256i ebits = _mm256_slli_epi64(_mm256_add_epi64(n64, exp_bias), 52);
    const __m256d e = _mm256_mul_pd(p, _mm256_castsi256_pd(ebits));
    _mm256_storeu_pd(values + i,
                     _mm256_div_pd(_mm256_sub_pd(e, one), _mm256_add_pd(e, one)));
  }
  for (; i < n; ++i) values[i] = fast_tanh(values[i]);
}

// GCC's avx512fintrin.h implements _mm512_undefined_* as a deliberately
// uninitialized read (`__m512i __Y = __Y;`), which -Wmaybe-uninitialized
// flags when intrinsics like _mm512_slli_epi64 inline here (GCC PR105593).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f")))
void tanh_block_avx512(double* values, std::size_t n) {
  const __m512d clamp_hi = _mm512_set1_pd(d::kClamp);
  const __m512d clamp_lo = _mm512_set1_pd(-d::kClamp);
  const __m512d log2e = _mm512_set1_pd(d::kLog2E);
  const __m512d magic = _mm512_set1_pd(d::kRoundMagic);
  const __m512i magic_bits = _mm512_set1_epi64(d::kRoundMagicBits);
  const __m512d ln2_hi = _mm512_set1_pd(d::kLn2Hi);
  const __m512d ln2_lo = _mm512_set1_pd(d::kLn2Lo);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512i exp_bias = _mm512_set1_epi64(1023);

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d t = _mm512_mul_pd(_mm512_loadu_pd(values + i), _mm512_set1_pd(2.0));
    t = _mm512_min_pd(t, clamp_hi);
    t = _mm512_max_pd(t, clamp_lo);
    __m512d nd = _mm512_add_pd(_mm512_mul_pd(t, log2e), magic);
    const __m512i n64 = _mm512_sub_epi64(_mm512_castpd_si512(nd), magic_bits);
    nd = _mm512_sub_pd(nd, magic);
    __m512d r = _mm512_sub_pd(t, _mm512_mul_pd(nd, ln2_hi));
    r = _mm512_sub_pd(r, _mm512_mul_pd(nd, ln2_lo));
    __m512d p = _mm512_set1_pd(d::kC7);
    p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(d::kC6));
    p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(d::kC5));
    p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(d::kC4));
    p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(d::kC3));
    p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(d::kC2));
    p = _mm512_add_pd(_mm512_mul_pd(p, r), one);
    p = _mm512_add_pd(_mm512_mul_pd(p, r), one);
    const __m512i ebits = _mm512_slli_epi64(_mm512_add_epi64(n64, exp_bias), 52);
    const __m512d e = _mm512_mul_pd(p, _mm512_castsi512_pd(ebits));
    _mm512_storeu_pd(values + i,
                     _mm512_div_pd(_mm512_sub_pd(e, one), _mm512_add_pd(e, one)));
  }
  for (; i < n; ++i) values[i] = fast_tanh(values[i]);
}
#pragma GCC diagnostic pop

__attribute__((target("avx2")))
void affine_block_avx2(const double* in_t, std::size_t n, std::size_t in_dim,
                       const double* w, const double* bias, double* out_t,
                       std::size_t out_dim) {
  affine_body(in_t, n, in_dim, w, bias, out_t, out_dim);
}

__attribute__((target("avx512f")))
void affine_block_avx512(const double* in_t, std::size_t n, std::size_t in_dim,
                         const double* w, const double* bias, double* out_t,
                         std::size_t out_dim) {
  affine_body(in_t, n, in_dim, w, bias, out_t, out_dim);
}

enum class Isa { kScalar, kAvx2, kAvx512 };

Isa detect_isa() {
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kScalar;
}

#endif  // RAFIKI_X86_DISPATCH

}  // namespace

void fast_tanh_block(double* values, std::size_t n) noexcept {
#if RAFIKI_X86_DISPATCH
  static const Isa isa = detect_isa();
  if (isa == Isa::kAvx512) {
    tanh_block_avx512(values, n);
    return;
  }
  if (isa == Isa::kAvx2) {
    tanh_block_avx2(values, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) values[i] = fast_tanh(values[i]);
}

void layer_affine_block(const double* in_t, std::size_t n, std::size_t in_dim,
                        const double* w, const double* bias, double* out_t,
                        std::size_t out_dim) noexcept {
#if RAFIKI_X86_DISPATCH
  static const Isa isa = detect_isa();
  if (isa == Isa::kAvx512) {
    affine_block_avx512(in_t, n, in_dim, w, bias, out_t, out_dim);
    return;
  }
  if (isa == Isa::kAvx2) {
    affine_block_avx2(in_t, n, in_dim, w, bias, out_t, out_dim);
    return;
  }
#endif
  affine_body(in_t, n, in_dim, w, bias, out_t, out_dim);
}

}  // namespace rafiki::ml
