file(REMOVE_RECURSE
  "CMakeFiles/fig06_interdependence.dir/fig06_interdependence.cpp.o"
  "CMakeFiles/fig06_interdependence.dir/fig06_interdependence.cpp.o.d"
  "fig06_interdependence"
  "fig06_interdependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_interdependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
