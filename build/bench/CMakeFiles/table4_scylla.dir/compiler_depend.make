# Empty compiler generated dependencies file for table4_scylla.
# This may be replaced when dependencies are built.
