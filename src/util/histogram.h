// Fixed-bin histogram with an ASCII renderer, used to reproduce the
// prediction-error histograms of Figures 8 and 9.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rafiki {

class Histogram {
 public:
  /// Bins partition [lo, hi) evenly; samples outside are clamped into the
  /// first/last bin so the histogram never silently drops data.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;
  /// Adds `count` samples into the bin that contains `x` (the striped-stats
  /// merge path, where per-stripe bin counts are folded in wholesale).
  void add_binned(double x, std::size_t count) noexcept;
  /// Folds another histogram's counts into this one. Both must have been
  /// constructed with the same [lo, hi) range and bin count.
  void merge(const Histogram& other) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const noexcept;
  double bin_hi(std::size_t bin) const noexcept;

  /// Linear-interpolated quantile estimate from the bin counts, q in [0, 1]
  /// (0.5 = median, 0.99 = p99). Used for the serve layer's latency
  /// percentiles. Returns the range lower bound for an empty histogram;
  /// clamped samples bias the extreme quantiles toward the range edges.
  double quantile(double q) const noexcept;

  /// Multi-line bar chart, one row per bin:  "[-10.0, -7.5) ###### 12".
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rafiki
