# Empty compiler generated dependencies file for rafiki_ml.
# This may be replaced when dependencies are built.
