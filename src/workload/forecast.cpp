#include "workload/forecast.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rafiki::workload {

WorkloadForecaster::WorkloadForecaster(ForecastOptions options) : options_(options) {}

WorkloadForecaster::Regime WorkloadForecaster::regime_of(double read_ratio) const noexcept {
  if (read_ratio >= options_.read_heavy_threshold) return Regime::kReadHeavy;
  if (read_ratio <= options_.write_heavy_threshold) return Regime::kWriteHeavy;
  return Regime::kMixed;
}

void WorkloadForecaster::observe(double read_ratio) {
  const Regime regime = regime_of(read_ratio);
  if (observations_ > 0) {
    transitions_[static_cast<int>(last_)][static_cast<int>(regime)] += 1.0;
    // EWMA smooths within-regime jitter only; a regime switch restarts it so
    // the persistence level never lags across transitions.
    ewma_ = regime == last_
                ? options_.ewma_alpha * read_ratio + (1.0 - options_.ewma_alpha) * ewma_
                : read_ratio;
  } else {
    ewma_ = read_ratio;
  }
  regime_sum_[static_cast<int>(regime)] += read_ratio;
  regime_count_[static_cast<int>(regime)] += 1.0;
  last_ = regime;
  ++observations_;
}

double WorkloadForecaster::transition_probability(Regime from, Regime to) const {
  const auto& row = transitions_[static_cast<int>(from)];
  double total = 0.0;
  for (double count : row) total += count + options_.transition_prior;
  return (row[static_cast<int>(to)] + options_.transition_prior) / total;
}

double WorkloadForecaster::regime_mean(Regime regime) const {
  const auto index = static_cast<int>(regime);
  if (regime_count_[index] > 0.0) return regime_sum_[index] / regime_count_[index];
  switch (regime) {  // unobserved regimes default to their band midpoint
    case Regime::kWriteHeavy:
      return options_.write_heavy_threshold / 2.0;
    case Regime::kReadHeavy:
      return (1.0 + options_.read_heavy_threshold) / 2.0;
    case Regime::kMixed:
      break;
  }
  return (options_.write_heavy_threshold + options_.read_heavy_threshold) / 2.0;
}

double WorkloadForecaster::persistence_probability() const {
  return transition_probability(last_, last_);
}

std::vector<std::pair<double, double>> WorkloadForecaster::likely_next() const {
  std::vector<std::pair<double, double>> ranked;
  for (std::size_t to = 0; to < kRegimes; ++to) {
    const auto regime = static_cast<Regime>(to);
    const double p = transition_probability(last_, regime);
    // Staying in the regime -> recent level persists; switching -> the
    // destination regime's historical level.
    const double level = regime == last_ ? ewma_ : regime_mean(regime);
    ranked.emplace_back(p, std::clamp(level, 0.0, 1.0));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return ranked;
}

double WorkloadForecaster::predict_next() const {
  if (observations_ == 0) return 0.5;
  // Predictive median: the most likely regime's level. A probability-
  // weighted mean would hedge toward 0.5 on every stable window and lose to
  // persistence in absolute error.
  return likely_next().front().second;
}

ForecastEvaluation evaluate_forecaster(const std::vector<double>& read_ratios,
                                       ForecastOptions options) {
  ForecastEvaluation eval;
  if (read_ratios.size() < 2) return eval;
  WorkloadForecaster forecaster(options);
  double f_err = 0.0, p_err = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < read_ratios.size(); ++i) {
    forecaster.observe(read_ratios[i]);
    f_err += std::abs(forecaster.predict_next() - read_ratios[i + 1]);
    p_err += std::abs(read_ratios[i] - read_ratios[i + 1]);
    ++n;
  }
  eval.forecaster_mae = f_err / static_cast<double>(n);
  eval.persistence_mae = p_err / static_cast<double>(n);
  return eval;
}

}  // namespace rafiki::workload
