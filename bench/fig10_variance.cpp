// Figure 10 + Section 4.10: throughput over time (10-second sampling) for
// Cassandra and ScyllaDB under a stationary 70%-read workload. Cassandra is
// comparatively stable; ScyllaDB's internal auto-tuner produces strong
// fluctuations (dips around 60% lasting ~40 s), which is why its surrogate
// predictions are less accurate (Table 2 vs Table 4).
//
// Timescale: simulated measurements compress wall time (see
// engine/scylla.cpp); one 0.1-virtual-second window corresponds to the
// paper's 10-second sampling interval.
#include <cstdio>

#include "bench/common.h"
#include "collect/runner.h"
#include "util/stats.h"

using namespace rafiki;

namespace {

std::vector<double> window_series(bool scylla) {
  collect::MeasureOptions options = benchutil::paper_options().collect.measure;
  options.ops = 200000;  // long stationary run
  options.warmup_ops = 12000;
  options.noise_sd = 0.0;
  options.scylla = scylla;
  options.record_windows = true;
  options.window_s = 0.1;  // == 10 wall seconds
  options.seed = 1010;
  auto workload = workload::WorkloadSpec::with_read_ratio(0.7);
  // Stationarity: writes update existing rows. (At the simulator's reduced
  // scale, sustained inserts would double the dataset within the run and
  // overflow the caches — a scale artifact the paper's multi-hundred-GB
  // store does not exhibit fractionally over 10 minutes.)
  workload.insert_fraction = 0.0;
  return collect::measure(engine::Config::defaults(), workload, options).window_throughput;
}

std::string bar(double value, double max_value) {
  const auto width = static_cast<std::size_t>(40.0 * value / max_value);
  return std::string(width, '#');
}

}  // namespace

int main() {
  benchutil::note("running long stationary measurements (RR=70%)...");
  const auto cassandra = window_series(false);
  const auto scylla = window_series(true);
  const std::size_t n = std::min(cassandra.size(), scylla.size());

  double max_value = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_value = std::max({max_value, cassandra[i], scylla[i]});
  }

  benchutil::section("Figure 10: throughput per 10s (wall) window, RR=70%");
  std::printf("%8s  %-42s %-42s\n", "t(wall)", "Cassandra", "ScyllaDB");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%6zus  %-42s %-42s\n", i * 10,
                (bar(cassandra[i], max_value) + " " + Table::ops(cassandra[i])).c_str(),
                (bar(scylla[i], max_value) + " " + Table::ops(scylla[i])).c_str());
  }

  const double c_mean = mean(cassandra), s_mean = mean(scylla);
  const double c_cv = stddev(cassandra) / c_mean, s_cv = stddev(scylla) / s_mean;
  const double s_dip = 100.0 * (s_mean - min_of(scylla)) / s_mean;
  Table stats({"engine", "mean ops/s", "min", "max", "CV"});
  stats.add_row({"Cassandra", Table::ops(c_mean), Table::ops(min_of(cassandra)),
                 Table::ops(max_of(cassandra)), Table::pct(100 * c_cv)});
  stats.add_row({"ScyllaDB", Table::ops(s_mean), Table::ops(min_of(scylla)),
                 Table::ops(max_of(scylla)), Table::pct(100 * s_cv)});
  benchutil::emit(stats, "Stationary-run statistics");

  benchutil::compare("Cassandra stability", "stable (prediction accurate)",
                     "CV " + Table::pct(100 * c_cv));
  benchutil::compare("ScyllaDB fluctuation", "large (up to 60% for 40s)",
                     "CV " + Table::pct(100 * s_cv) + ", worst dip " + Table::pct(s_dip));
  benchutil::compare("ScyllaDB varies more than Cassandra", "yes",
                     s_cv > 2 * c_cv ? "yes (>2x CV)" : "NO");
  return 0;
}
