file(REMOVE_RECURSE
  "CMakeFiles/table1_minmax.dir/table1_minmax.cpp.o"
  "CMakeFiles/table1_minmax.dir/table1_minmax.cpp.o.d"
  "table1_minmax"
  "table1_minmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
