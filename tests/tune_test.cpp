// Unit tests for the online knob-selection layer (src/tune/): the streaming
// significance screen, the active-subspace re-cut rules, and the reduced
// genome mapping through opt::SubspaceMap.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "engine/config.h"
#include "engine/params.h"
#include "opt/ga.h"
#include "opt/space.h"
#include "tune/screen.h"
#include "tune/subspace.h"

namespace rafiki::tune {
namespace {

using engine::Config;
using engine::ParamId;

TEST(KnobScreen, SeedOnlyScoreIsTheSeed) {
  KnobScreen screen;
  screen.seed(ParamId::kConcurrentWrites, 12.5);
  EXPECT_DOUBLE_EQ(screen.score(ParamId::kConcurrentWrites), 12.5);
  // Unseeded, unobserved knobs score zero.
  EXPECT_DOUBLE_EQ(screen.score(ParamId::kRowCacheSizeMb), 0.0);
  const auto ranking = screen.ranking();
  EXPECT_EQ(ranking.front().id, ParamId::kConcurrentWrites);
  EXPECT_EQ(ranking.front().samples, 0u);
}

TEST(KnobScreen, FirstBucketSampleContributesNoKnobEvidence) {
  KnobScreen screen;
  // The residual is taken against the bucket mean *including* the sample, so
  // the first observation of a bucket is pure workload baseline.
  screen.observe(0.5, Config::defaults(), 50000.0);
  EXPECT_EQ(screen.observations(), 1u);
  for (const auto& entry : screen.ranking()) {
    EXPECT_DOUBLE_EQ(entry.stream_score, 0.0) << "knob " << static_cast<int>(entry.id);
  }
}

TEST(KnobScreen, WorkloadShiftIsAbsorbedByTheBaseline) {
  KnobScreen screen;
  // Identical config, wildly different throughput across read-ratio regimes:
  // all of it is workload effect, none of it knob evidence.
  for (int i = 0; i < 5; ++i) {
    screen.observe(0.1, Config::defaults(), 40000.0);
    screen.observe(0.9, Config::defaults(), 90000.0);
  }
  for (const auto& entry : screen.ranking()) {
    EXPECT_NEAR(entry.stream_score, 0.0, 1e-9);
  }
}

TEST(KnobScreen, ConsistentKnobEffectBuildsStreamScore) {
  KnobScreen screen;
  const auto lo = Config::defaults().with(ParamId::kConcurrentWrites, 16.0);
  const auto hi = Config::defaults().with(ParamId::kConcurrentWrites, 96.0);
  // Same workload bucket; the hi-CW config consistently measures faster.
  for (int i = 0; i < 8; ++i) {
    screen.observe(0.5, lo, 40000.0);
    screen.observe(0.5, hi, 60000.0);
  }
  const auto ranking = screen.ranking();
  double cw_stream = 0.0;
  for (const auto& entry : ranking) {
    if (entry.id == ParamId::kConcurrentWrites) cw_stream = entry.stream_score;
  }
  EXPECT_GT(cw_stream, 0.0);
  // A knob both configs hold at the default has one populated level -> no
  // stream evidence.
  for (const auto& entry : ranking) {
    if (entry.id == ParamId::kRowCacheSizeMb) {
      EXPECT_DOUBLE_EQ(entry.stream_score, 0.0);
    }
  }
}

TEST(KnobScreen, BlendFollowsThePseudoCountFormula) {
  ScreenOptions options;
  options.seed_weight = 32.0;
  KnobScreen screen(options);
  screen.seed(ParamId::kConcurrentWrites, 10.0);
  const auto lo = Config::defaults().with(ParamId::kConcurrentWrites, 16.0);
  const auto hi = Config::defaults().with(ParamId::kConcurrentWrites, 96.0);
  for (int i = 0; i < 3; ++i) {
    screen.observe(0.5, lo, 40000.0);
    screen.observe(0.5, hi, 60000.0);
  }
  const auto ranking = screen.ranking();
  for (const auto& entry : ranking) {
    if (entry.id != ParamId::kConcurrentWrites) continue;
    const auto n = static_cast<double>(entry.samples);
    EXPECT_EQ(entry.samples, 6u);
    EXPECT_NEAR(entry.score, (32.0 * 10.0 + n * entry.stream_score) / (32.0 + n), 1e-12);
  }
}

/// Ranking fixture: the given ids get descending high scores, everything
/// else a uniform low floor, producing one distinct drop after the set.
std::vector<KnobScore> ranking_with_top(const std::vector<ParamId>& top,
                                        double floor = 1.0) {
  std::vector<KnobScore> ranking;
  for (const auto& spec : engine::param_registry()) {
    KnobScore entry;
    entry.id = spec.id;
    entry.score = floor;
    for (std::size_t i = 0; i < top.size(); ++i) {
      if (top[i] == spec.id) entry.score = 100.0 - 5.0 * static_cast<double>(i);
    }
    ranking.push_back(entry);
  }
  return ranking;
}

TEST(ActiveSubspace, FirstCutAdoptsTheDistinctDropSet) {
  ActiveSubspace subspace;
  const std::vector<ParamId> top = {ParamId::kCompactionMethod, ParamId::kConcurrentWrites,
                                    ParamId::kConcurrentReads};
  EXPECT_TRUE(subspace.recut(ranking_with_top(top)));
  ASSERT_EQ(subspace.active().size(), 3u);
  // Registry order, not score order.
  EXPECT_EQ(subspace.active()[0], ParamId::kCompactionMethod);
  EXPECT_EQ(subspace.active()[1], ParamId::kConcurrentWrites);
  EXPECT_EQ(subspace.active()[2], ParamId::kConcurrentReads);
  EXPECT_EQ(subspace.recuts(), 1u);
  EXPECT_EQ(subspace.changes(), 1u);
}

TEST(ActiveSubspace, RedundantKnobFoldsIntoItsCanonical) {
  ActiveSubspace subspace;
  // memtable_flush_writers is redundant_with memtable_cleanup_threshold: even
  // a dominant score on the redundant knob must elect the canonical one.
  auto ranking = ranking_with_top({ParamId::kCompactionMethod, ParamId::kConcurrentWrites,
                                   ParamId::kConcurrentReads});
  for (auto& entry : ranking) {
    if (entry.id == ParamId::kMemtableFlushWriters) entry.score = 500.0;
  }
  EXPECT_TRUE(subspace.recut(ranking));
  EXPECT_TRUE(subspace.is_active(ParamId::kMemtableCleanupThreshold));
  EXPECT_FALSE(subspace.is_active(ParamId::kMemtableFlushWriters));
}

/// Ranking fixture with explicit per-knob scores (unlisted knobs get 1.0).
std::vector<KnobScore> ranking_with_scores(
    const std::vector<std::pair<ParamId, double>>& scores) {
  std::vector<KnobScore> ranking;
  for (const auto& spec : engine::param_registry()) {
    KnobScore entry;
    entry.id = spec.id;
    entry.score = 1.0;
    for (const auto& [id, score] : scores) {
      if (id == spec.id) entry.score = score;
    }
    ranking.push_back(entry);
  }
  return ranking;
}

TEST(ActiveSubspace, HysteresisKeepsIncumbentsAgainstSmallMargins) {
  SubspaceOptions options;
  options.hysteresis = 0.25;
  ActiveSubspace subspace(options);
  ASSERT_TRUE(subspace.recut(ranking_with_top({ParamId::kCompactionMethod,
                                               ParamId::kConcurrentWrites,
                                               ParamId::kConcurrentReads})));

  // A challenger 10% above the weakest incumbent (inside the 25% boost), with
  // a tightly packed tail below it so the distinct drop stays at k = 3: the
  // boosted incumbent (50 x 1.25 = 62.5) still tops the challenger's 55.
  const std::vector<std::pair<ParamId, double>> tail = {
      {ParamId::kRowCacheSizeMb, 54.0},      {ParamId::kCommitlogSyncPeriodMs, 53.0},
      {ParamId::kCommitlogSegmentSizeMb, 52.0}, {ParamId::kSstableSizeMb, 51.0},
      {ParamId::kMinCompactionThreshold, 50.0}, {ParamId::kMaxCompactionThreshold, 49.0}};
  auto close_call = tail;
  close_call.insert(close_call.end(), {{ParamId::kCompactionMethod, 100.0},
                                       {ParamId::kConcurrentWrites, 95.0},
                                       {ParamId::kConcurrentReads, 50.0},
                                       {ParamId::kKeyCacheSizeMb, 55.0}});
  EXPECT_FALSE(subspace.recut(ranking_with_scores(close_call)));
  EXPECT_TRUE(subspace.is_active(ParamId::kConcurrentReads));
  EXPECT_FALSE(subspace.is_active(ParamId::kKeyCacheSizeMb));

  // The same challenger at 2x the incumbent: clears the boost and displaces.
  auto clear_win = tail;
  clear_win.insert(clear_win.end(), {{ParamId::kCompactionMethod, 100.0},
                                     {ParamId::kConcurrentWrites, 95.0},
                                     {ParamId::kConcurrentReads, 50.0},
                                     {ParamId::kKeyCacheSizeMb, 100.0}});
  EXPECT_TRUE(subspace.recut(ranking_with_scores(clear_win)));
  EXPECT_TRUE(subspace.is_active(ParamId::kKeyCacheSizeMb));
  EXPECT_FALSE(subspace.is_active(ParamId::kConcurrentReads));
}

TEST(ActiveSubspace, ForceFreezesTheSet) {
  ActiveSubspace subspace;
  subspace.force({ParamId::kConcurrentWrites, ParamId::kCompactionMethod});
  EXPECT_TRUE(subspace.frozen());
  ASSERT_EQ(subspace.active().size(), 2u);
  EXPECT_EQ(subspace.active()[0], ParamId::kCompactionMethod);  // sorted
  const auto before = subspace.active();
  EXPECT_FALSE(subspace.recut(ranking_with_top({ParamId::kRowCacheSizeMb,
                                                ParamId::kKeyCacheSizeMb,
                                                ParamId::kTrickleFsync})));
  EXPECT_EQ(subspace.active(), before);
}

TEST(ActiveSubspace, GenomeMappingPinsInactiveKnobs) {
  ActiveSubspace subspace;
  subspace.force({ParamId::kConcurrentWrites, ParamId::kFileCacheSizeMb});
  const auto pinned =
      Config::defaults().with(ParamId::kConcurrentCompactors, 7.0);
  subspace.pin(pinned);

  const auto config = subspace.to_config({64.0, 1024.0});
  EXPECT_DOUBLE_EQ(config.get(ParamId::kConcurrentWrites), 64.0);
  EXPECT_DOUBLE_EQ(config.get(ParamId::kFileCacheSizeMb), 1024.0);
  EXPECT_DOUBLE_EQ(config.get(ParamId::kConcurrentCompactors), 7.0);  // pinned
  EXPECT_EQ(subspace.to_genome(config), (std::vector<double>{64.0, 1024.0}));

  const auto map = subspace.map();
  EXPECT_EQ(map.full_size(), engine::kParamCount);
  EXPECT_EQ(map.reduced().size(), 2u);
  const auto full = map.expand(std::vector<double>{64.0, 1024.0});
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(ParamId::kConcurrentWrites)], 64.0);
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(ParamId::kConcurrentCompactors)], 7.0);
  EXPECT_EQ(map.restrict(full), (std::vector<double>{64.0, 1024.0}));
}

TEST(SubspaceMap, ValidatesItsArguments) {
  const std::vector<opt::Dimension> dims = {
      {"a", false, 0, 1}, {"b", false, 0, 1}, {"c", false, 0, 1}};
  const std::vector<double> pinned = {0.5, 0.5, 0.5};
  EXPECT_THROW(opt::SubspaceMap(dims, {}, pinned), std::invalid_argument);
  EXPECT_THROW(opt::SubspaceMap(dims, {3}, pinned), std::invalid_argument);
  EXPECT_THROW(opt::SubspaceMap(dims, {1, 1}, pinned), std::invalid_argument);
  EXPECT_THROW(opt::SubspaceMap(dims, {2, 1}, pinned), std::invalid_argument);
  EXPECT_THROW(opt::SubspaceMap(dims, {0, 2}, {0.5}), std::invalid_argument);
  EXPECT_NO_THROW(opt::SubspaceMap(dims, {0, 2}, pinned));
}

TEST(GaSeedPoints, WarmStartDoesNotPerturbSeedlessRuns) {
  const opt::SearchSpace space({{"x", false, -5, 5}, {"y", false, -5, 5}});
  const auto sphere = [](std::span<const double> p) {
    return -(p[0] * p[0] + p[1] * p[1]);
  };
  opt::GaOptions options;
  options.population = 12;
  options.generations = 8;
  options.seed = 31;
  const auto base = opt::ga_optimize(space, sphere, options);
  // A size-mismatched seed point is skipped entirely -> bit-identical run.
  options.seed_points = {{1.0, 2.0, 3.0}};
  const auto skipped = opt::ga_optimize(space, sphere, options);
  EXPECT_EQ(base.best_point, skipped.best_point);
  EXPECT_EQ(base.best_history, skipped.best_history);
}

TEST(GaSeedPoints, SeededOptimumIsNeverLost) {
  const opt::SearchSpace space({{"x", false, -5, 5}, {"y", false, -5, 5}});
  const auto sphere = [](std::span<const double> p) {
    return -(p[0] * p[0] + p[1] * p[1]);
  };
  opt::GaOptions options;
  options.population = 12;
  options.generations = 4;
  options.seed = 31;
  options.seed_points = {{0.0, 0.0}};
  const auto result = opt::ga_optimize(space, sphere, options);
  // The optimum is in the initial population, so every generation's best is
  // already optimal, and the history tracks the genome that achieved it.
  ASSERT_FALSE(result.best_history.empty());
  EXPECT_DOUBLE_EQ(result.best_history.front(), 0.0);
  ASSERT_EQ(result.best_point_history.size(), result.best_history.size());
  EXPECT_EQ(result.best_point_history.front(), (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(result.best_point, (std::vector<double>{0.0, 0.0}));
}

}  // namespace
}  // namespace rafiki::tune
