// Name-string exhaustiveness: every enum the wire protocol range-checks has a
// *Count constant, and every value in [0, Count) must render a real, unique
// name. A new enumerator without a name (or a Count left stale) fails here
// before it can ship a "?" onto an operator's screen.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/wire.h"
#include "serve/types.h"

namespace rafiki::net {
namespace {

template <typename Enum, typename NameFn>
void expect_exhaustive(std::size_t count, NameFn name_of, const char* label) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string name = name_of(static_cast<Enum>(i));
    EXPECT_NE(name, "?") << label << " value " << i << " has no name";
    EXPECT_FALSE(name.empty()) << label << " value " << i;
    EXPECT_TRUE(seen.insert(name).second)
        << label << " value " << i << " duplicates name '" << name << "'";
  }
  // One past the end must fall through to the "?" sentinel, proving the
  // Count constant is not smaller than the real enum.
  EXPECT_STREQ(name_of(static_cast<Enum>(count)), "?") << label;
}

TEST(NetNames, EndpointNamesAreExhaustive) {
  expect_exhaustive<serve::Endpoint>(serve::kEndpointCount, serve::endpoint_name,
                                     "Endpoint");
}

TEST(NetNames, StatusNamesAreExhaustive) {
  expect_exhaustive<serve::Status>(serve::kStatusCount, serve::status_name, "Status");
}

TEST(NetNames, FrameTypeNamesAreExhaustive) {
  expect_exhaustive<FrameType>(kFrameTypeCount, frame_type_name, "FrameType");
}

TEST(NetNames, WireErrorNamesAreExhaustive) {
  expect_exhaustive<WireError>(kWireErrorCount, wire_error_name, "WireError");
}

TEST(NetNames, DecodeStatusNamesAreExhaustive) {
  expect_exhaustive<DecodeStatus>(kDecodeStatusCount, decode_status_name,
                                  "DecodeStatus");
}

TEST(NetNames, NetStatusNamesAreExhaustive) {
  expect_exhaustive<NetStatus>(kNetStatusCount, net_status_name, "NetStatus");
}

}  // namespace
}  // namespace rafiki::net
