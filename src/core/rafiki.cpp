#include "core/rafiki.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "engine/scylla.h"

namespace rafiki::core {

Rafiki::Rafiki(RafikiOptions options) : options_(std::move(options)) {
  options_.collect.measure.scylla = options_.scylla;
}

const std::vector<ParamRanking>& Rafiki::rank_parameters() {
  if (!ranking_.empty()) return ranking_;

  workload::WorkloadSpec workload = options_.base_workload;
  workload.read_ratio = options_.anova_read_ratio;

  std::uint64_t seed_counter = options_.collect.seed;
  for (const auto& spec : engine::param_registry()) {
    // Vary this parameter alone, others at defaults (Section 3.4.1), with
    // measurement replicates per level forming the ANOVA groups.
    opt::SearchSpace one_dim({{std::string(spec.name),
                               spec.type != engine::ParamType::kReal, spec.lo, spec.hi}});
    const auto levels = one_dim.level_values(0, static_cast<std::size_t>(spec.anova_levels));

    std::vector<std::vector<double>> groups;
    for (double level : levels) {
      const auto config = engine::Config::defaults().with(spec.id, level);
      std::vector<double> group;
      for (std::size_t r = 0; r < options_.anova_repeats; ++r) {
        collect::MeasureOptions measure = options_.collect.measure;
        measure.seed = ++seed_counter * 7919 + r;
        group.push_back(collect::measure_throughput(config, workload, measure));
      }
      groups.push_back(std::move(group));
    }

    ParamRanking entry;
    entry.id = spec.id;
    entry.score = ml::level_mean_stddev(groups);
    const auto anova = ml::one_way_anova(groups);
    entry.f_statistic = anova.f_statistic;
    entry.p_value = anova.p_value;
    ranking_.push_back(entry);
  }

  std::sort(ranking_.begin(), ranking_.end(),
            [](const ParamRanking& a, const ParamRanking& b) { return a.score > b.score; });
  return ranking_;
}

const std::vector<engine::ParamId>& Rafiki::select_key_params() {
  if (!key_params_.empty()) return key_params_;
  const auto& ranking = rank_parameters();

  std::vector<ParamRanking> usable;
  for (const auto& entry : ranking) {
    // Section 4.5: parameters that merely co-determine a canonical knob's
    // mechanism (flush frequency) are skipped in favour of that knob.
    if (engine::param_spec(entry.id).redundant_with != engine::ParamId::kCount) {
      continue;
    }
    // Section 4.10: strip parameters ScyllaDB's auto-tuner ignores, then
    // refill by variance until the count matches Cassandra's.
    if (options_.scylla) {
      const auto& ignored = engine::ScyllaServer::ignored_params();
      if (std::find(ignored.begin(), ignored.end(), entry.id) != ignored.end()) {
        continue;
      }
    }
    usable.push_back(entry);
  }

  std::size_t k = options_.key_param_count;
  if (k == 0) {
    std::vector<ml::AnovaRanking> scored;
    for (const auto& entry : usable) {
      scored.push_back({std::string(engine::param_name(entry.id)), entry.score,
                        entry.f_statistic, entry.p_value});
    }
    k = ml::distinct_drop_cutoff(scored, 3, 8);
  }
  k = std::min(k, usable.size());
  for (std::size_t i = 0; i < k; ++i) key_params_.push_back(usable[i].id);
  return key_params_;
}

void Rafiki::set_key_params(std::vector<engine::ParamId> params) {
  key_params_ = std::move(params);
}

collect::Dataset Rafiki::collect() {
  const auto& params = select_key_params();
  const auto configs =
      collect::sample_configs(params, options_.n_configs, options_.collect.seed);
  return collect::collect_dataset(configs, options_.workload_grid, options_.base_workload,
                                  options_.collect);
}

void Rafiki::train(const collect::Dataset& dataset) {
  const auto& params = select_key_params();
  surrogate_.fit(dataset.feature_matrix(params), dataset.targets(), options_.ensemble);
}

double Rafiki::predict(double read_ratio, const engine::Config& config) const {
  if (!surrogate_.trained()) throw std::logic_error("Rafiki::predict: train() first");
  std::vector<double> features;
  features.reserve(key_params_.size() + 1);
  features.push_back(read_ratio);
  for (auto id : key_params_) features.push_back(config.get(id));
  return surrogate_.predict(features);
}

std::vector<double> Rafiki::predict_batch(double read_ratio,
                                          const std::vector<engine::Config>& configs) const {
  if (!surrogate_.trained()) throw std::logic_error("Rafiki::predict_batch: train() first");
  // One flat feature block instead of a vector per config: the batched call
  // stays allocation-lean even when the micro-batcher sends small chunks.
  ml::Matrix rows(configs.size(), key_params_.size() + 1);
  for (std::size_t r = 0; r < configs.size(); ++r) {
    rows(r, 0) = read_ratio;
    for (std::size_t j = 0; j < key_params_.size(); ++j) {
      rows(r, 1 + j) = configs[r].get(key_params_[j]);
    }
  }
  return surrogate_.predict_batch(rows);
}

opt::SearchSpace Rafiki::key_space() const {
  if (key_params_.empty()) throw std::logic_error("Rafiki::key_space: no key params");
  std::vector<opt::Dimension> dims;
  for (auto id : key_params_) {
    const auto& spec = engine::param_spec(id);
    dims.push_back({std::string(spec.name), spec.type != engine::ParamType::kReal,
                    spec.lo, spec.hi});
  }
  return opt::SearchSpace(std::move(dims));
}

Rafiki::OptimizeResult Rafiki::optimize(double read_ratio) const {
  if (!surrogate_.trained()) throw std::logic_error("Rafiki::optimize: train() first");
  const auto space = key_space();

  // Whole-cohort surrogate evaluation: the GA scores each generation through
  // one batched ensemble call (matrix-matrix kernels) instead of one
  // matrix-vector pass per individual.
  const auto objective = [&](const std::vector<std::vector<double>>& points) {
    std::vector<std::vector<double>> rows;
    rows.reserve(points.size());
    for (const auto& point : points) {
      std::vector<double> features;
      features.reserve(point.size() + 1);
      features.push_back(read_ratio);
      features.insert(features.end(), point.begin(), point.end());
      rows.push_back(std::move(features));
    }
    return surrogate_.predict_batch(rows);
  };

  // det:ok(wall-clock): wall_seconds is reporting-only; no result depends on it
  const auto t0 = std::chrono::steady_clock::now();
  const auto ga = opt::ga_optimize_batched(space, objective, options_.ga);
  // det:ok(wall-clock): wall_seconds is reporting-only; no result depends on it
  const auto t1 = std::chrono::steady_clock::now();

  OptimizeResult result;
  result.config = engine::Config::from_vector(key_params_, ga.best_point);
  result.predicted_throughput = ga.best_fitness;
  result.surrogate_evaluations = ga.evaluations;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

}  // namespace rafiki::core
