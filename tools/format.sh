#!/usr/bin/env bash
# clang-format driver. Default: reformat the tree in place.
#   tools/format.sh --check   verify only; exit 1 if any file needs formatting
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

clang_format_bin=""
for candidate in clang-format clang-format-18 clang-format-17 clang-format-16 \
                 clang-format-15 clang-format-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    clang_format_bin="$candidate"
    break
  fi
done
if [[ -z "$clang_format_bin" ]]; then
  echo "format.sh: clang-format not found on PATH; nothing checked" >&2
  exit 0
fi

mapfile -t sources < <(git ls-files '*.cpp' '*.h' '*.hpp' '*.cc')

if [[ "${1:-}" == "--check" ]]; then
  "$clang_format_bin" --dry-run --Werror "${sources[@]}"
else
  "$clang_format_bin" -i "${sources[@]}"
fi
