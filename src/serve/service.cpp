#include "serve/service.h"

#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <time.h>
#endif

#include "core/online.h"

namespace rafiki::serve {
namespace {

double elapsed_us(std::chrono::steady_clock::time_point since,
                  std::chrono::steady_clock::time_point until) {
  return std::chrono::duration<double, std::micro>(until - since).count();
}

ServiceOptions sanitize(ServiceOptions options) {
  if (options.tenants == 0) options.tenants = 1;
  return options;
}

/// Pins the calling thread to one CPU (no-op off Linux or on failure —
/// affinity is a performance hint, never a correctness requirement).
void pin_current_thread(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

/// CPU time this thread has burned so far, in microseconds (telemetry only).
std::uint64_t thread_cpu_us() {
#if defined(__linux__)
  timespec ts{};
  // det:ok(wall-clock): per-thread CPU-time telemetry; no result depends on it
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
#else
  return 0;
#endif
}

}  // namespace

TuningService::TuningService(ServiceOptions options)
    : options_(sanitize(std::move(options))),
      registries_(options_.tenants),
      version_counters_(options_.tenants, 0),
      pending_tuned_(options_.tenants),
      queue_(options_.queue_capacity),
      stats_(options_.stats),
      retrain_(
          // The worker thread delegates to the owning tenant's optimize
          // path; the tuner coalesces already-cached buckets into a no-op,
          // and its publish hook republishes the result through that
          // tenant's registry slot.
          [this](std::uint64_t key, double read_ratio) {
            auto* tuner = tuner_for(retrain_key_tenant(key));
            if (tuner != nullptr) tuner->run_optimize(read_ratio);
          },
          options_.retrain, &stats_),
      tuners_(options_.tenants) {}

TuningService::~TuningService() { stop(); }

std::uint64_t TuningService::publish(ModelSnapshot snapshot) {
  MutexLock lock(publish_mutex_);
  // Every tenant slot gets the new model; each stamps its own version (so a
  // tenant's version history stays monotonic and tenant-local). Tenant 0's
  // version is returned for single-tenant callers.
  std::uint64_t first = 0;
  for (TenantId tenant = 1; tenant < registries_.size(); ++tenant) {
    publish_locked(tenant, snapshot);  // copies; tenant 0 below takes the original
  }
  first = publish_locked(0, std::move(snapshot));
  return first;
}

std::uint64_t TuningService::publish_locked(TenantId tenant, ModelSnapshot snapshot) {
  // Fold in tuned entries that arrived before this tenant's first real
  // publish; entries already in the snapshot win.
  auto& pending = pending_tuned_[tenant];
  for (const auto& [bucket, entry] : pending) snapshot.tuned.emplace(bucket, entry);
  pending.clear();
  snapshot.version = ++version_counters_[tenant];
  const std::uint64_t version = snapshot.version;
  registries_[tenant].set(std::make_shared<const ModelSnapshot>(std::move(snapshot)));
  return version;
}

std::uint64_t TuningService::model_version() const {
  const auto snapshot = registries_[0].get();
  return snapshot ? snapshot->version : 0;
}

std::uint64_t TuningService::tenant_model_version(TenantId tenant) const {
  const auto snapshot = tenant_snapshot(tenant);
  return snapshot ? snapshot->version : 0;
}

void TuningService::attach_tuner(core::OnlineTuner& tuner) {
  tuner.set_publish_hook([this](int bucket, const core::Rafiki::OptimizeResult& result) {
    publish_tuned(0, bucket, result.config, result.predicted_throughput);
  });
  // Route the tuner's cache misses (ObserveWindow staleness, prefetch) to
  // the background worker: no GA ever runs on a request-path thread.
  tuner.set_async_optimize_hook([this](int bucket, double read_ratio) {
    retrain_.enqueue(retrain_key(0, bucket), read_ratio);
  });
  tuners_[0].store(&tuner, std::memory_order_release);
}

void TuningService::bind_tenant_tuner(TenantId tenant, core::OnlineTuner& tuner) {
  // Pointer only — the tuner's single-slot hooks stay untouched so a router
  // or fleet that shares / owns the tuner can install them itself
  // (attach_tuner here would make last-attached-shard win and drop everyone
  // else's republish).
  if (tenant >= tuners_.size()) return;
  tuners_[tenant].store(&tuner, std::memory_order_release);
}

void TuningService::publish_tuned(TenantId tenant, int bucket,
                                  const engine::Config& config, double predicted) {
  // Copy-on-write republication: the tuned-config table rides inside the
  // immutable snapshot, so readers see it with the same lock-free load.
  // Only this tenant's slot is touched; sibling tenants keep the exact
  // shared_ptr (and version) they were already serving.
  if (tenant >= registries_.size()) return;
  MutexLock lock(publish_mutex_);
  const auto current = registries_[tenant].get();
  if (!current) {
    // Nothing real is published yet: don't burn a version on a snapshot
    // with an untrained ensemble and null space — park the entry until the
    // tenant's first publish() folds it in.
    pending_tuned_[tenant][bucket] = TunedEntry{config, predicted};
    return;
  }
  ModelSnapshot next = *current;
  next.tuned[bucket] = TunedEntry{config, predicted};
  publish_locked(tenant, std::move(next));
}

Status TuningService::offer(const Request& request, ResponseCallback& done) {
  Job job;
  job.request = request;
  job.done = std::move(done);
  // det:ok(wall-clock): reporting-only latency timestamp; results never depend on it
  job.enqueued = std::chrono::steady_clock::now();

  const Endpoint endpoint = request.endpoint;
  const PushResult pushed = queue_.try_push(std::move(job));
  if (pushed != PushResult::kOk) {
    // The push itself reports why it failed — atomically, under the queue
    // lock — so a concurrent close() can never turn a full-queue rejection
    // into a spurious kShuttingDown. The rejected job is intact (try_push
    // moves only on kOk): hand the callback back for a spill retry.
    done = std::move(job.done);
    const Status reason =
        pushed == PushResult::kClosed ? Status::kShuttingDown : Status::kOverloaded;
    stats_.record_reject(endpoint, reason);
    return reason;
  }
  // Depth is sampled from the lock-free hint: the exact size() re-took the
  // queue mutex once per accepted request just for telemetry.
  stats_.record_accept(endpoint, queue_.approx_size());
  return Status::kOk;
}

std::future<Response> TuningService::submit(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  const Status admitted = try_submit(
      std::move(request),
      [promise](Response response) { promise->set_value(std::move(response)); });
  if (admitted != Status::kOk) {
    Response response;
    response.status = admitted;
    promise->set_value(std::move(response));
  }
  return future;
}

Status TuningService::try_submit(Request request, ResponseCallback done) {
  return offer(request, done);
}

void TuningService::start() {
  MutexLock lock(lifecycle_mutex_);
  if (started_ || stopped_) return;
  started_ = true;
  retrain_.start();
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void TuningService::stop() {
  {
    MutexLock lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Request workers are gone, so nothing can enqueue retrains anymore; the
  // background worker drains or cancels its backlog (an in-flight GA always
  // completes and still republishes through the registry).
  retrain_.stop(options_.drain_retrain_on_stop);
  // No worker ever consumed these (workers == 0, or stop before start):
  // fail them instead of leaving their futures hanging.
  while (auto job = queue_.try_pop()) {
    Response response;
    response.status = Status::kShuttingDown;
    finish(*job, response);
  }
}

void TuningService::worker_loop(std::size_t worker_index) {
  if (!options_.cpu_affinity.empty()) {
    pin_current_thread(
        options_.cpu_affinity[worker_index % options_.cpu_affinity.size()]);
  }
  while (auto job = queue_.pop()) {
    if (job->request.endpoint != Endpoint::kPredict) {
      run_single(std::move(*job));
      continue;
    }

    // Micro-batcher: coalesce queued Predict requests behind this one, up to
    // max_batch or until the flush window elapses. A non-Predict request
    // popped while draining terminates the batch and runs right after it.
    std::vector<Job> batch;
    batch.push_back(std::move(*job));
    std::optional<Job> carry;
    // The flush window is real time by design: it affects only how requests
    // are grouped into batches, never what any request returns.
    // det:ok(wall-clock): real-time micro-batch flush window, grouping only
    const auto flush_at = std::chrono::steady_clock::now() + options_.batch_window;
    while (batch.size() < options_.max_batch) {
      auto next = queue_.try_pop();
      if (!next) {
        // Adaptive flush: an empty queue means no co-arriving requests to
        // coalesce — run what we have now rather than stalling everyone in
        // the batch for the rest of the window (the 1-client/batch-32 case
        // degraded to window-bound throughput before this).
        if (options_.adaptive_batch) break;
        next = queue_.pop_until(flush_at);
        if (!next) break;  // window elapsed (or queue closed and drained)
      }
      if (next->request.endpoint == Endpoint::kPredict) {
        batch.push_back(std::move(*next));
      } else {
        carry = std::move(*next);
        break;
      }
    }
    run_predict_batch(std::move(batch));
    if (carry) run_single(std::move(*carry));
  }
  worker_cpu_us_.fetch_add(thread_cpu_us(), std::memory_order_relaxed);
}

void TuningService::finish(Job& job, Response response) {
  // det:ok(wall-clock): reporting-only latency measurement
  const auto now = std::chrono::steady_clock::now();
  stats_.record_done(job.request.endpoint, response.status, elapsed_us(job.enqueued, now));
  job.done(std::move(response));
}

void TuningService::run_predict_batch(std::vector<Job> batch) {
  const Tick now = now_tick();

  // Deadline triage, then partition by tenant: a micro-batch may interleave
  // tenants, and each group must evaluate against its own tenant's snapshot.
  // std::map keeps the per-tenant order deterministic (ascending TenantId);
  // within a group, arrival order is preserved.
  std::map<TenantId, std::vector<Job>> groups;
  for (auto& job : batch) {
    if (expired(job.request, now)) {
      Response response;
      response.status = Status::kDeadlineExceeded;
      finish(job, response);
    } else {
      groups[job.request.tenant].push_back(std::move(job));
    }
  }

  for (auto& [tenant, live] : groups) {
    const auto snapshot = tenant_snapshot(tenant);
    if (!snapshot || !snapshot->ensemble.trained()) {
      // Unknown tenant, or the tenant's slot has no trained model yet.
      for (auto& job : live) {
        Response response;
        response.status = Status::kNotReady;
        finish(job, response);
      }
      continue;
    }

    std::vector<std::vector<double>> rows;
    rows.reserve(live.size());
    for (const auto& job : live) {
      rows.push_back(snapshot->feature_row(job.request.read_ratio, job.request.config));
    }
    const auto predictions = snapshot->ensemble.predict_batch_with_uncertainty(rows);
    stats_.record_batch(live.size());

    for (std::size_t i = 0; i < live.size(); ++i) {
      Response response;
      response.status = Status::kOk;
      response.model_version = snapshot->version;
      response.mean = predictions[i].mean;
      response.stddev = predictions[i].stddev;
      response.batch_size = live.size();
      finish(live[i], response);
    }
  }
}

void TuningService::run_single(Job job) {
  Response response;
  if (expired(job.request, now_tick())) {
    response.status = Status::kDeadlineExceeded;
    finish(job, response);
    return;
  }

  switch (job.request.endpoint) {
    case Endpoint::kPredict: {
      // Unreachable through worker_loop (predicts go through the batcher),
      // but kept correct for direct use: a batch of one.
      std::vector<Job> batch;
      batch.push_back(std::move(job));
      run_predict_batch(std::move(batch));
      return;
    }
    case Endpoint::kOptimize: {
      const auto snapshot = tenant_snapshot(job.request.tenant);
      if (!snapshot || !snapshot->ensemble.trained() || !snapshot->space) {
        response.status = Status::kNotReady;
        break;
      }
      const double read_ratio = job.request.read_ratio;
      const auto objective = [&](const std::vector<std::vector<double>>& points) {
        std::vector<std::vector<double>> rows;
        rows.reserve(points.size());
        for (const auto& point : points) {
          std::vector<double> features;
          features.reserve(point.size() + 1);
          features.push_back(read_ratio);
          features.insert(features.end(), point.begin(), point.end());
          rows.push_back(std::move(features));
        }
        return snapshot->ensemble.predict_batch(rows);
      };
      const auto ga = opt::ga_optimize_batched(*snapshot->space, objective, options_.ga);
      response.status = Status::kOk;
      response.model_version = snapshot->version;
      response.config = engine::Config::from_vector(snapshot->key_params, ga.best_point);
      response.predicted_throughput = ga.best_fitness;
      response.surrogate_evaluations = ga.evaluations;
      break;
    }
    case Endpoint::kObserveWindow: {
      auto* tuner = tuner_for(job.request.tenant);
      if (tuner == nullptr) {
        response.status = Status::kNotReady;
        break;
      }
      // The tuner is internally synchronized. With the async-optimize hook
      // attached (attach_tuner), a cache miss returns immediately with a
      // stale-marked decision and the bucket lands on the RetrainWorker; the
      // publish hook republishes the tuned config as a new snapshot version
      // once the background GA completes.
      const auto decision = tuner->on_window(job.request.read_ratio);
      response.status = Status::kOk;
      response.model_version = tenant_model_version(job.request.tenant);
      response.config = decision.config;
      response.reconfigured = decision.reconfigured;
      response.stale = decision.stale;
      response.predicted_throughput = decision.predicted_throughput;
      if (decision.stale) stats_.record_stale(Endpoint::kObserveWindow);
      break;
    }
  }
  finish(job, response);
}

}  // namespace rafiki::serve
