// ShardedTuningService: stable band->shard routing across restarts, per-shard
// admission isolation, spill-to-sibling on overload, hot-band rebalance,
// lockstep publish fan-out, sharded-vs-unsharded bit parity, and the striped
// ServiceStats merge-on-read contract under concurrent writers (the latter is
// the suite's tsan probe).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rafiki.h"
#include "engine/params.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "serve/snapshot.h"
#include "serve/stats.h"

namespace rafiki::serve {
namespace {

// One tiny trained pipeline shared by every test in the suite; training is
// the expensive part and all tests only read from it.
class ServeShard : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::RafikiOptions options;
    options.workload_grid = {0.2, 0.8};
    options.n_configs = 5;
    options.collect.measure.ops = 3000;
    options.collect.measure.warmup_ops = 300;
    options.ensemble.n_nets = 3;
    options.ensemble.train.max_epochs = 30;
    options.ga.generations = 6;
    options.ga.population = 10;
    rafiki_ = new core::Rafiki(options);
    rafiki_->set_key_params(engine::key_params());
    rafiki_->train(rafiki_->collect());
    ASSERT_TRUE(rafiki_->trained());
  }

  static void TearDownTestSuite() {
    delete rafiki_;
    rafiki_ = nullptr;
  }

  static Request predict_request(double read_ratio,
                                 engine::Config config = engine::Config::defaults()) {
    Request request;
    request.endpoint = Endpoint::kPredict;
    request.read_ratio = read_ratio;
    request.config = config;
    return request;
  }

  /// First band routed to `shard` (every shard owns at least one of the 101
  /// bands for shard counts up to 101 only probabilistically — the tests
  /// assert the lookup succeeded).
  static std::size_t band_on_shard(const ShardedTuningService& service,
                                   std::size_t shard) {
    for (std::size_t band = 0; band < ShardedTuningService::kBands; ++band) {
      if (service.shard_of_band(band) == shard) return band;
    }
    return ShardedTuningService::kBands;  // not found
  }

  static core::Rafiki* rafiki_;
};

core::Rafiki* ServeShard::rafiki_ = nullptr;

TEST_F(ServeShard, BandOfQuantizesToPercentAndClamps) {
  EXPECT_EQ(ShardedTuningService::band_of(0.0), 0u);
  EXPECT_EQ(ShardedTuningService::band_of(1.0), 100u);
  EXPECT_EQ(ShardedTuningService::band_of(0.254), 25u);
  EXPECT_EQ(ShardedTuningService::band_of(0.255), 26u);  // round, not floor
  EXPECT_EQ(ShardedTuningService::band_of(-3.0), 0u);
  EXPECT_EQ(ShardedTuningService::band_of(7.0), 100u);
}

TEST_F(ServeShard, RoutingIsStableAcrossRestarts) {
  // The fingerprint is a pure function of the band index, so two
  // independently constructed routers (a "restart") agree on every band.
  for (std::size_t band = 0; band < ShardedTuningService::kBands; ++band) {
    EXPECT_EQ(ShardedTuningService::band_fingerprint(band),
              ShardedTuningService::band_fingerprint(band));
  }
  for (std::size_t shards : {2u, 4u, 7u}) {
    ShardOptions options;
    options.shards = shards;
    options.service.workers = 0;
    ShardedTuningService first(options);
    ShardedTuningService second(options);
    for (std::size_t band = 0; band < ShardedTuningService::kBands; ++band) {
      EXPECT_EQ(first.shard_of_band(band), second.shard_of_band(band))
          << "band " << band << " with " << shards << " shards";
      EXPECT_LT(first.shard_of_band(band), shards);
    }
  }
}

TEST_F(ServeShard, RouteTableOverridePinsABand) {
  ShardOptions options;
  options.shards = 4;
  options.service.workers = 0;
  ShardedTuningService service(options);
  service.route_band(50, 2);
  EXPECT_EQ(service.shard_of_band(50), 2u);
  EXPECT_EQ(service.shard_of(0.50), 2u);
  // Out-of-range pins are ignored, not clamped into a wrong shard.
  const auto before = service.shard_of_band(10);
  service.route_band(10, 99);
  EXPECT_EQ(service.shard_of_band(10), before);
}

TEST_F(ServeShard, OverloadIsIsolatedPerShard) {
  ShardOptions options;
  options.shards = 2;
  options.spill_limit = 0;  // no spill: overload must stay on its shard
  options.service.workers = 0;  // nobody drains: queues stay as we fill them
  options.service.queue_capacity = 1;
  ShardedTuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  const std::size_t band_a = band_on_shard(service, 0);
  const std::size_t band_b = band_on_shard(service, 1);
  ASSERT_LT(band_a, ShardedTuningService::kBands);
  ASSERT_LT(band_b, ShardedTuningService::kBands);
  const double rr_a = static_cast<double>(band_a) / 100.0;
  const double rr_b = static_cast<double>(band_b) / 100.0;

  auto first = service.submit(predict_request(rr_a));
  auto overflow = service.submit(predict_request(rr_a));
  ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(overflow.get().status, Status::kOverloaded);

  // Shard 0 being full says nothing about shard 1: its band still admits.
  auto other = service.submit(predict_request(rr_b));
  EXPECT_NE(other.wait_for(std::chrono::seconds(0)), std::future_status::ready);

  EXPECT_EQ(service.spills(), 0u);
  service.stop();
  EXPECT_EQ(first.get().status, Status::kShuttingDown);
  EXPECT_EQ(other.get().status, Status::kShuttingDown);
}

TEST_F(ServeShard, SpillAbsorbsOverloadOnASibling) {
  ShardOptions options;
  options.shards = 2;
  options.spill_limit = 1;
  options.service.workers = 0;
  options.service.queue_capacity = 1;
  ShardedTuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  const std::size_t band = band_on_shard(service, 0);
  ASSERT_LT(band, ShardedTuningService::kBands);
  const double rr = static_cast<double>(band) / 100.0;

  auto home = service.submit(predict_request(rr));     // fills shard 0
  auto spilled = service.submit(predict_request(rr));  // absorbed by shard 1
  EXPECT_NE(spilled.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(service.spills(), 1u);

  // Both queues full now: the verdict is a real Overloaded.
  auto rejected = service.submit(predict_request(rr));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(rejected.get().status, Status::kOverloaded);
  EXPECT_EQ(service.spills(), 1u);

  service.stop();
  EXPECT_EQ(home.get().status, Status::kShuttingDown);
  EXPECT_EQ(spilled.get().status, Status::kShuttingDown);
}

TEST_F(ServeShard, RebalanceMigratesTheHottestBand) {
  ShardOptions options;
  options.shards = 4;
  options.service.workers = 1;
  ShardedTuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  // Pin two hot bands onto shard 0 so its load dominates, then hammer them.
  service.route_band(20, 0);
  service.route_band(80, 0);
  for (int i = 0; i < 12; ++i) EXPECT_TRUE(service.call(predict_request(0.20)).ok());
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(service.call(predict_request(0.80)).ok());

  EXPECT_TRUE(service.rebalance_hottest());
  EXPECT_EQ(service.rebalances(), 1u);
  // The hottest band (20, 12 hits) moved off the overloaded shard...
  EXPECT_NE(service.shard_of_band(20), 0u);
  // ...and requests keep flowing through the new route.
  EXPECT_TRUE(service.call(predict_request(0.20)).ok());
  service.stop();
}

TEST_F(ServeShard, RebalanceDeclinesWhenNothingImproves) {
  ShardOptions options;
  options.shards = 2;
  options.service.workers = 0;
  ShardedTuningService service(options);
  // No traffic at all: nothing to move.
  EXPECT_FALSE(service.rebalance_hottest());
  EXPECT_EQ(service.rebalances(), 0u);
}

TEST_F(ServeShard, PublishFansOutInLockstep) {
  ShardOptions options;
  options.shards = 3;
  options.service.workers = 0;
  ShardedTuningService service(options);
  EXPECT_EQ(service.publish(make_snapshot(*rafiki_)), 1u);
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    EXPECT_EQ(service.shard(i).model_version(), 1u);
  }
  EXPECT_EQ(service.publish(make_snapshot(*rafiki_)), 2u);
  EXPECT_EQ(service.model_version(), 2u);
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    EXPECT_EQ(service.shard(i).model_version(), 2u);
  }
}

TEST_F(ServeShard, ShardedPredictMatchesUnshardedBitForBit) {
  ShardOptions sharded_options;
  sharded_options.shards = 3;
  sharded_options.service.workers = 1;
  ShardedTuningService sharded(sharded_options);
  sharded.publish(make_snapshot(*rafiki_));
  sharded.start();

  // Routing must be a pure dispatch optimization: whatever shard answers,
  // the bits match the direct ensemble evaluation.
  const auto config = engine::Config::defaults().with(engine::key_params()[0], 2.0);
  for (const double rr : {0.05, 0.35, 0.50, 0.81, 0.99}) {
    const auto response = sharded.call(predict_request(rr, config));
    ASSERT_TRUE(response.ok()) << "rr " << rr;
    EXPECT_EQ(response.mean, rafiki_->predict(rr, config)) << "rr " << rr;
  }
  sharded.stop();
}

TEST(ShardWorkerBudget, ExplicitBudgetDividesDeterministically) {
  // budget/N each, +1 for the first budget%N shards: budget 6 over 4 shards
  // is {2, 2, 1, 1}, and the total is exactly the budget.
  ShardOptions options;
  options.shards = 4;
  options.worker_budget = 6;
  ShardedTuningService service(options);
  EXPECT_EQ(service.shard(0).worker_count(), 2u);
  EXPECT_EQ(service.shard(1).worker_count(), 2u);
  EXPECT_EQ(service.shard(2).worker_count(), 1u);
  EXPECT_EQ(service.shard(3).worker_count(), 1u);
  EXPECT_EQ(service.resolved_worker_budget(), 6u);
}

TEST(ShardWorkerBudget, ExplicitBudgetFloorsAtOneWorkerPerShard) {
  // A budget below the shard count would starve some queues forever; it is
  // clamped so every shard keeps exactly one worker.
  ShardOptions options;
  options.shards = 4;
  options.worker_budget = 2;
  ShardedTuningService service(options);
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    EXPECT_EQ(service.shard(i).worker_count(), 1u) << "shard " << i;
  }
  EXPECT_EQ(service.resolved_worker_budget(), 4u);
}

TEST(ShardWorkerBudget, DerivedBudgetNeverOversubscribesTheMachine) {
  // The de-scaling regression: 8 shards x workers used to spawn the full
  // product regardless of the host. The derived budget caps at the hardware
  // threads (floored at one worker per shard), for every shard count.
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ShardOptions options;
    options.shards = shards;
    options.service.workers = 4;
    ShardedTuningService service(options);
    const std::size_t total = service.resolved_worker_budget();
    EXPECT_LE(total, std::max(hw, shards)) << shards << " shards";
    EXPECT_GE(total, shards) << shards << " shards";
    EXPECT_LE(total, shards * options.service.workers) << shards << " shards";
    // Deterministic for a fixed config on a fixed machine.
    ShardedTuningService again(options);
    EXPECT_EQ(again.resolved_worker_budget(), total) << shards << " shards";
  }
}

TEST(ShardWorkerBudget, ZeroWorkersStaysZeroEverywhere) {
  // Test mode (workers == 0: requests queue until drained by stop) must
  // survive budgeting — no floor kicks in when no pool was asked for.
  ShardOptions options;
  options.shards = 4;
  options.service.workers = 0;
  ShardedTuningService service(options);
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    EXPECT_EQ(service.shard(i).worker_count(), 0u) << "shard " << i;
  }
  EXPECT_EQ(service.resolved_worker_budget(), 0u);
}

TEST_F(ServeShard, ParityHoldsUnderBudgetAndPinning) {
  // The budget division and CPU pinning are pure scheduling changes: with an
  // uneven worker split and pinned shards, every predict still matches the
  // direct ensemble evaluation bit for bit.
  ShardOptions sharded_options;
  sharded_options.shards = 3;
  sharded_options.worker_budget = 4;  // splits {2, 1, 1}
  sharded_options.pin_shards = true;
  ShardedTuningService sharded(sharded_options);
  sharded.publish(make_snapshot(*rafiki_));
  sharded.start();

  const auto config = engine::Config::defaults().with(engine::key_params()[0], 2.0);
  for (const double rr : {0.05, 0.35, 0.50, 0.81, 0.99}) {
    const auto response = sharded.call(predict_request(rr, config));
    ASSERT_TRUE(response.ok()) << "rr " << rr;
    EXPECT_EQ(response.mean, rafiki_->predict(rr, config)) << "rr " << rr;
  }
  sharded.stop();
}

TEST_F(ServeShard, MergedCountersSpanAllShards) {
  ShardOptions options;
  options.shards = 4;
  options.service.workers = 1;
  ShardedTuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.start();

  constexpr int kCalls = 40;
  for (int i = 0; i < kCalls; ++i) {
    EXPECT_TRUE(service.call(predict_request(0.01 * (i % 101))).ok());
  }
  service.stop();

  const auto merged = service.endpoint_counters(Endpoint::kPredict);
  EXPECT_EQ(merged.ok, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(merged.completed, static_cast<std::uint64_t>(kCalls));
  // The per-shard counters actually split the traffic (the routing spread
  // 101 bands over 4 shards), and their sum is exactly the merged view.
  std::uint64_t summed = 0;
  std::size_t shards_with_traffic = 0;
  for (std::size_t i = 0; i < service.shard_count(); ++i) {
    const auto per = service.shard(i).stats().counters(Endpoint::kPredict);
    summed += per.ok;
    if (per.ok > 0) ++shards_with_traffic;
  }
  EXPECT_EQ(summed, merged.ok);
  EXPECT_GT(shards_with_traffic, 1u);
}

// tsan probe: hot-path recording is relaxed striped atomics with no mutex;
// merge-on-read must be data-race-free against concurrent writers, and the
// merged totals must be exact once the writers are joined (the documented
// happens-before contract).
TEST_F(ServeShard, StripedStatsMergeOnReadUnderConcurrentWriters) {
  ServiceStats stats;
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 2000;

  std::atomic<bool> run{true};
  std::thread reader([&] {
    // Concurrent merge-on-read: values are momentarily torn across stripes
    // by design; the assertion here is tsan-cleanliness, not exactness.
    while (run.load(std::memory_order_relaxed)) {
      const auto snapshot = stats.counters(Endpoint::kPredict);
      EXPECT_LE(snapshot.ok, kWriters * kPerWriter);
      (void)stats.table();
      (void)stats.latency_quantile(Endpoint::kPredict, 0.99);
      (void)stats.mean_batch_size();
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stats, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        stats.record_accept(Endpoint::kPredict, /*queue_depth=*/w);
        stats.record_done(Endpoint::kPredict, Status::kOk,
                          static_cast<double>(i % 500));
        stats.record_batch(1 + i % 8);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  run.store(false, std::memory_order_relaxed);
  reader.join();

  // Writers joined: the merge now observes every stripe's final value.
  const auto counters = stats.counters(Endpoint::kPredict);
  EXPECT_EQ(counters.accepted, kWriters * kPerWriter);
  EXPECT_EQ(counters.completed, kWriters * kPerWriter);
  EXPECT_EQ(counters.ok, kWriters * kPerWriter);
  EXPECT_EQ(stats.batches(), kWriters * kPerWriter);
  const auto aggregate = stats.endpoint_aggregate(Endpoint::kPredict);
  EXPECT_EQ(aggregate.latency_count, kWriters * kPerWriter);
  EXPECT_GT(stats.mean_batch_size(), 1.0);
  EXPECT_GT(stats.latency_quantile(Endpoint::kPredict, 0.5), 0.0);
}

}  // namespace
}  // namespace rafiki::serve
