#include "core/rafiki.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "engine/scylla.h"
#include "util/sync.h"

namespace rafiki::core {

/// Side-car state for dynamic knob selection. Lives behind a unique_ptr so
/// Rafiki stays movable and the serve layer's const references can stream
/// observations into it.
struct Rafiki::DynamicKnobs {
  DynamicKnobs(const tune::ScreenOptions& screen_options,
               const tune::SubspaceOptions& subspace_options)
      : screen(screen_options), subspace(subspace_options) {}

  mutable Mutex mutex;
  tune::KnobScreen screen GUARDED_BY(mutex);
  tune::ActiveSubspace subspace GUARDED_BY(mutex);
  /// Whether the screen has been seeded from the offline ANOVA sweep.
  bool seeded GUARDED_BY(mutex) = false;
};

Rafiki::Rafiki(RafikiOptions options) : options_(std::move(options)) {
  options_.collect.measure.scylla = options_.scylla;
  if (options_.dynamic_knobs) {
    dynamic_ = std::make_unique<DynamicKnobs>(options_.screen, options_.subspace);
  }
}

Rafiki::~Rafiki() = default;
Rafiki::Rafiki(Rafiki&&) noexcept = default;
Rafiki& Rafiki::operator=(Rafiki&&) noexcept = default;

void Rafiki::ensure_full_key_params() {
  if (!key_params_.empty()) return;
  key_params_.reserve(engine::kParamCount);
  for (const auto& spec : engine::param_registry()) key_params_.push_back(spec.id);
}

const std::vector<ParamRanking>& Rafiki::rank_parameters() {
  if (!ranking_.empty()) return ranking_;

  workload::WorkloadSpec workload = options_.base_workload;
  workload.read_ratio = options_.anova_read_ratio;

  std::uint64_t seed_counter = options_.collect.seed;
  for (const auto& spec : engine::param_registry()) {
    // Vary this parameter alone, others at defaults (Section 3.4.1), with
    // measurement replicates per level forming the ANOVA groups.
    opt::SearchSpace one_dim({{std::string(spec.name),
                               spec.type != engine::ParamType::kReal, spec.lo, spec.hi}});
    const auto levels = one_dim.level_values(0, static_cast<std::size_t>(spec.anova_levels));

    std::vector<std::vector<double>> groups;
    for (double level : levels) {
      const auto config = engine::Config::defaults().with(spec.id, level);
      std::vector<double> group;
      for (std::size_t r = 0; r < options_.anova_repeats; ++r) {
        collect::MeasureOptions measure = options_.collect.measure;
        measure.seed = ++seed_counter * 7919 + r;
        group.push_back(collect::measure_throughput(config, workload, measure));
      }
      groups.push_back(std::move(group));
    }

    ParamRanking entry;
    entry.id = spec.id;
    entry.score = ml::level_mean_stddev(groups);
    const auto anova = ml::one_way_anova(groups);
    entry.f_statistic = anova.f_statistic;
    entry.p_value = anova.p_value;
    ranking_.push_back(entry);
  }

  std::sort(ranking_.begin(), ranking_.end(),
            [](const ParamRanking& a, const ParamRanking& b) { return a.score > b.score; });
  return ranking_;
}

const std::vector<engine::ParamId>& Rafiki::select_key_params() {
  if (dynamic_) {
    // Dynamic mode: the surrogate's feature layout is the FULL registry (so
    // re-cuts never invalidate the model); "selection" means seeding the
    // streaming screen from the offline sweep and cutting the first active
    // set. A frozen (forced) subspace skips the expensive sweep entirely.
    ensure_full_key_params();
    bool need_seed = false;
    {
      MutexLock lock(dynamic_->mutex);
      need_seed = !dynamic_->seeded && !dynamic_->subspace.frozen();
    }
    if (need_seed) {
      const auto& ranking = rank_parameters();  // OAT sweep, no lock held
      MutexLock lock(dynamic_->mutex);
      if (!dynamic_->seeded) {
        for (const auto& entry : ranking) dynamic_->screen.seed(entry.id, entry.score);
        dynamic_->subspace.recut(dynamic_->screen.ranking());
        dynamic_->seeded = true;
      }
    }
    return key_params_;
  }

  if (!key_params_.empty()) return key_params_;
  const auto& ranking = rank_parameters();

  std::vector<ParamRanking> usable;
  for (const auto& entry : ranking) {
    // Section 4.5: parameters that merely co-determine a canonical knob's
    // mechanism (flush frequency) are skipped in favour of that knob.
    if (engine::param_spec(entry.id).redundant_with != engine::ParamId::kCount) {
      continue;
    }
    // Section 4.10: strip parameters ScyllaDB's auto-tuner ignores, then
    // refill by variance until the count matches Cassandra's.
    if (options_.scylla) {
      const auto& ignored = engine::ScyllaServer::ignored_params();
      if (std::find(ignored.begin(), ignored.end(), entry.id) != ignored.end()) {
        continue;
      }
    }
    usable.push_back(entry);
  }

  std::size_t k = options_.key_param_count;
  if (k == 0) {
    std::vector<ml::AnovaRanking> scored;
    for (const auto& entry : usable) {
      scored.push_back({std::string(engine::param_name(entry.id)), entry.score,
                        entry.f_statistic, entry.p_value});
    }
    k = ml::distinct_drop_cutoff(scored, 3, 8);
  }
  k = std::min(k, usable.size());
  for (std::size_t i = 0; i < k; ++i) key_params_.push_back(usable[i].id);
  return key_params_;
}

void Rafiki::set_key_params(std::vector<engine::ParamId> params) {
  // In dynamic mode a "known-good selection" means pinning the ACTIVE set —
  // the feature layout stays the full registry regardless.
  if (dynamic_) {
    set_active_params(std::move(params));
    return;
  }
  key_params_ = std::move(params);
}

void Rafiki::set_active_params(std::vector<engine::ParamId> params) {
  if (!dynamic_) {
    key_params_ = std::move(params);
    return;
  }
  ensure_full_key_params();
  MutexLock lock(dynamic_->mutex);
  dynamic_->subspace.force(std::move(params));
}

void Rafiki::observe_sample(double read_ratio, const engine::Config& config,
                            double throughput) const {
  if (!dynamic_) return;
  MutexLock lock(dynamic_->mutex);
  dynamic_->screen.observe(read_ratio, config, throughput);
}

bool Rafiki::rescreen() const {
  if (!dynamic_) return false;
  MutexLock lock(dynamic_->mutex);
  return dynamic_->subspace.recut(dynamic_->screen.ranking());
}

std::vector<engine::ParamId> Rafiki::active_params() const {
  if (!dynamic_) return key_params_;
  MutexLock lock(dynamic_->mutex);
  return dynamic_->subspace.active();
}

std::vector<tune::KnobScore> Rafiki::knob_ranking() const {
  if (!dynamic_) return {};
  MutexLock lock(dynamic_->mutex);
  return dynamic_->screen.ranking();
}

Rafiki::TuneStats Rafiki::tune_stats() const {
  TuneStats stats;
  if (!dynamic_) return stats;
  MutexLock lock(dynamic_->mutex);
  stats.observations = dynamic_->screen.observations();
  stats.recuts = dynamic_->subspace.recuts();
  stats.changes = dynamic_->subspace.changes();
  stats.active = dynamic_->subspace.active().size();
  return stats;
}

collect::Dataset Rafiki::collect() {
  const auto& params = select_key_params();
  // Dynamic mode trains over the full registry but searches a pinned
  // subspace, so the random fill of the collection plan concentrates joint
  // samples on the active slice (coverage extremes still span every knob).
  const auto configs = dynamic_
                           ? collect::sample_configs_focused(
                                 params, active_params(), options_.n_configs,
                                 options_.collect.seed)
                           : collect::sample_configs(params, options_.n_configs,
                                                     options_.collect.seed);
  return collect::collect_dataset(configs, options_.workload_grid, options_.base_workload,
                                  options_.collect);
}

void Rafiki::train(const collect::Dataset& dataset) {
  const auto& params = select_key_params();
  surrogate_.fit(dataset.feature_matrix(params), dataset.targets(), options_.ensemble);
}

double Rafiki::predict(double read_ratio, const engine::Config& config) const {
  if (!surrogate_.trained()) throw std::logic_error("Rafiki::predict: train() first");
  std::vector<double> features;
  features.reserve(key_params_.size() + 1);
  features.push_back(read_ratio);
  for (auto id : key_params_) features.push_back(config.get(id));
  return surrogate_.predict(features);
}

std::vector<double> Rafiki::predict_batch(double read_ratio,
                                          const std::vector<engine::Config>& configs) const {
  if (!surrogate_.trained()) throw std::logic_error("Rafiki::predict_batch: train() first");
  // One flat feature block instead of a vector per config: the batched call
  // stays allocation-lean even when the micro-batcher sends small chunks.
  ml::Matrix rows(configs.size(), key_params_.size() + 1);
  for (std::size_t r = 0; r < configs.size(); ++r) {
    rows(r, 0) = read_ratio;
    for (std::size_t j = 0; j < key_params_.size(); ++j) {
      rows(r, 1 + j) = configs[r].get(key_params_[j]);
    }
  }
  return surrogate_.predict_batch(rows);
}

opt::SearchSpace Rafiki::key_space() const {
  if (key_params_.empty()) throw std::logic_error("Rafiki::key_space: no key params");
  std::vector<opt::Dimension> dims;
  for (auto id : key_params_) {
    const auto& spec = engine::param_spec(id);
    dims.push_back({std::string(spec.name), spec.type != engine::ParamType::kReal,
                    spec.lo, spec.hi});
  }
  return opt::SearchSpace(std::move(dims));
}

std::vector<double> Rafiki::fitness_batch(const std::vector<std::vector<double>>& rows) const {
  if (options_.ga_risk_aversion <= 0.0) return surrogate_.predict_batch(rows);
  const auto preds = surrogate_.predict_batch_with_uncertainty(rows);
  std::vector<double> values;
  values.reserve(preds.size());
  for (const auto& p : preds) {
    values.push_back(p.mean - options_.ga_risk_aversion * p.stddev);
  }
  return values;
}

Rafiki::OptimizeResult Rafiki::optimize(double read_ratio) const {
  if (!surrogate_.trained()) throw std::logic_error("Rafiki::optimize: train() first");
  if (dynamic_) return optimize_dynamic(read_ratio);
  const auto space = key_space();

  // Whole-cohort surrogate evaluation: the GA scores each generation through
  // one batched ensemble call (matrix-matrix kernels) instead of one
  // matrix-vector pass per individual.
  const auto objective = [&](const std::vector<std::vector<double>>& points) {
    std::vector<std::vector<double>> rows;
    rows.reserve(points.size());
    for (const auto& point : points) {
      std::vector<double> features;
      features.reserve(point.size() + 1);
      features.push_back(read_ratio);
      features.insert(features.end(), point.begin(), point.end());
      rows.push_back(std::move(features));
    }
    return fitness_batch(rows);
  };

  // det:ok(wall-clock): wall_seconds is reporting-only; no result depends on it
  const auto t0 = std::chrono::steady_clock::now();
  const auto ga = opt::ga_optimize_batched(space, objective, options_.ga);
  // det:ok(wall-clock): wall_seconds is reporting-only; no result depends on it
  const auto t1 = std::chrono::steady_clock::now();

  OptimizeResult result;
  result.config = engine::Config::from_vector(key_params_, ga.best_point);
  // best_fitness is the (possibly risk-penalized) GA objective; report the
  // raw predicted mean for the chosen configuration.
  result.predicted_throughput = options_.ga_risk_aversion > 0.0
                                    ? predict(read_ratio, result.config)
                                    : ga.best_fitness;
  result.surrogate_evaluations = ga.evaluations;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.best_history = ga.best_history;
  result.config_history.reserve(ga.best_point_history.size());
  for (const auto& genome : ga.best_point_history) {
    result.config_history.push_back(genome.empty()
                                        ? engine::Config::defaults()
                                        : engine::Config::from_vector(key_params_, genome));
  }
  return result;
}

Rafiki::OptimizeResult Rafiki::optimize_dynamic(double read_ratio) const {
  // Snapshot the current subspace mapping, then run the whole search without
  // the knob lock: a concurrent re-cut only affects the NEXT optimize.
  opt::SubspaceMap map = [&] {
    MutexLock lock(dynamic_->mutex);
    if (dynamic_->subspace.active().empty()) {
      throw std::logic_error("Rafiki::optimize: dynamic mode has no active knobs — "
                             "run select_key_params() or set_active_params() first");
    }
    return dynamic_->subspace.map();
  }();

  // The surrogate consumes the FULL registry layout; the GA's genome is only
  // the active subspace, expanded per evaluation with inactive knobs pinned.
  const auto objective = [&](const std::vector<std::vector<double>>& points) {
    std::vector<std::vector<double>> rows;
    rows.reserve(points.size());
    for (const auto& point : points) {
      const auto full = map.expand(point);
      std::vector<double> features;
      features.reserve(full.size() + 1);
      features.push_back(read_ratio);
      features.insert(features.end(), full.begin(), full.end());
      rows.push_back(std::move(features));
    }
    return fitness_batch(rows);
  };

  // Warm-start from the incumbent (pinned) configuration so a freshly re-cut
  // genome never searches from scratch: what previous optimizations learned
  // about the surviving knobs enters the initial population.
  opt::GaOptions ga_options = options_.ga;
  ga_options.seed_points.push_back(map.restrict(map.pinned()));

  // det:ok(wall-clock): wall_seconds is reporting-only; no result depends on it
  const auto t0 = std::chrono::steady_clock::now();
  const auto ga = opt::ga_optimize_batched(map.reduced(), objective, ga_options);
  // det:ok(wall-clock): wall_seconds is reporting-only; no result depends on it
  const auto t1 = std::chrono::steady_clock::now();

  OptimizeResult result;
  result.config = engine::Config::from_vector(key_params_, map.expand(ga.best_point));
  result.predicted_throughput = options_.ga_risk_aversion > 0.0
                                    ? predict(read_ratio, result.config)
                                    : ga.best_fitness;
  result.surrogate_evaluations = ga.evaluations;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.best_history = ga.best_history;
  result.config_history.reserve(ga.best_point_history.size());
  for (const auto& genome : ga.best_point_history) {
    result.config_history.push_back(
        genome.empty() ? engine::Config::defaults()
                       : engine::Config::from_vector(key_params_, map.expand(genome)));
  }

  // The winner becomes the pin: if a later re-cut drops one of today's
  // active knobs, it keeps serving at the value search just chose for it.
  {
    MutexLock lock(dynamic_->mutex);
    dynamic_->subspace.pin(result.config);
  }
  return result;
}

}  // namespace rafiki::core
