file(REMOVE_RECURSE
  "librafiki_opt.a"
)
