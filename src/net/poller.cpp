#include "net/poller.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include <cstring>

namespace rafiki::net {
namespace {

/// Level-triggered fallback: a persistent ::poll() set maintained
/// incrementally. fd -> slot lookups go through a dense vector (fds are
/// small integers), so add/mod/del are O(1) and wait() never rebuilds.
class PollPoller final : public EventPoller {
 public:
  bool add(int fd, bool want_read, bool want_write, void* data) override {
    if (fd < 0 || slot_of(fd) >= 0) return false;
    if (static_cast<std::size_t>(fd) >= slots_.size()) {
      slots_.resize(static_cast<std::size_t>(fd) + 1, -1);
    }
    slots_[static_cast<std::size_t>(fd)] = static_cast<int>(pfds_.size());
    pfds_.push_back({fd, mask(want_read, want_write), 0});
    data_.push_back(data);
    return true;
  }

  bool mod(int fd, bool want_read, bool want_write) override {
    const int slot = slot_of(fd);
    if (slot < 0) return false;
    pfds_[static_cast<std::size_t>(slot)].events = mask(want_read, want_write);
    return true;
  }

  bool del(int fd) override {
    const int slot = slot_of(fd);
    if (slot < 0) return false;
    const std::size_t s = static_cast<std::size_t>(slot);
    const std::size_t last = pfds_.size() - 1;
    if (s != last) {
      pfds_[s] = pfds_[last];
      data_[s] = data_[last];
      slots_[static_cast<std::size_t>(pfds_[s].fd)] = slot;
    }
    pfds_.pop_back();
    data_.pop_back();
    slots_[static_cast<std::size_t>(fd)] = -1;
    return true;
  }

  std::size_t wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    if (n <= 0) return 0;  // timeout, or EINTR reported as no events
    std::size_t appended = 0;
    for (std::size_t i = 0; i < pfds_.size() && appended < static_cast<std::size_t>(n); ++i) {
      const short revents = pfds_[i].revents;
      if (revents == 0) continue;
      PollerEvent ev;
      ev.fd = pfds_[i].fd;
      ev.data = data_[i];
      ev.readable = (revents & POLLIN) != 0;
      ev.writable = (revents & POLLOUT) != 0;
      ev.hangup = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(ev);
      ++appended;
    }
    return appended;
  }

  IoBackend backend() const noexcept override { return IoBackend::kPoll; }
  bool edge_triggered() const noexcept override { return false; }

 private:
  static short mask(bool want_read, bool want_write) noexcept {
    short events = 0;
    if (want_read) events = static_cast<short>(events | POLLIN);
    if (want_write) events = static_cast<short>(events | POLLOUT);
    return events;
  }

  int slot_of(int fd) const noexcept {
    if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size()) return -1;
    return slots_[static_cast<std::size_t>(fd)];
  }

  std::vector<pollfd> pfds_;
  std::vector<void*> data_;  ///< parallel to pfds_
  std::vector<int> slots_;   ///< fd -> index into pfds_, -1 = unregistered
};

#ifdef __linux__

/// Edge-triggered epoll. Registration subscribes to both directions once
/// (EPOLLIN|EPOLLOUT|EPOLLET); interest filtering is the consumer's ready
/// flags, so mod() never issues a syscall. epoll_data is a union, so each
/// registration gets a heap node carrying {fd, data} and the node pointer
/// rides in epoll_data.ptr — events echo both in O(1).
class EpollPoller final : public EventPoller {
 public:
  explicit EpollPoller(int epfd) : epfd_(epfd), buf_(kWaitBatch) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool add(int fd, bool /*want_read*/, bool /*want_write*/, void* data) override {
    if (fd < 0) return false;
    auto reg = std::make_unique<Reg>(Reg{fd, data});
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.ptr = reg.get();
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
    if (static_cast<std::size_t>(fd) >= regs_.size()) {
      regs_.resize(static_cast<std::size_t>(fd) + 1);
    }
    regs_[static_cast<std::size_t>(fd)] = std::move(reg);
    return true;
  }

  bool mod(int /*fd*/, bool /*want_read*/, bool /*want_write*/) override {
    return true;  // always subscribed to both directions; nothing to change
  }

  bool del(int fd) override {
    if (fd < 0 || static_cast<std::size_t>(fd) >= regs_.size() ||
        regs_[static_cast<std::size_t>(fd)] == nullptr) {
      return false;
    }
    // The node must outlive any events already copied out of the kernel for
    // this fd in the current wait batch; the server deregisters only from
    // the loop thread between waits, so freeing here is safe.
    regs_[static_cast<std::size_t>(fd)].reset();
    return ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0;
  }

  std::size_t wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    const int n = ::epoll_wait(epfd_, buf_.data(), static_cast<int>(buf_.size()), timeout_ms);
    if (n <= 0) return 0;  // timeout, or EINTR reported as no events
    for (int i = 0; i < n; ++i) {
      const auto& src = buf_[static_cast<std::size_t>(i)];
      const auto* reg = static_cast<const Reg*>(src.data.ptr);
      PollerEvent ev;
      ev.fd = reg->fd;
      ev.data = reg->data;
      ev.readable = (src.events & EPOLLIN) != 0;
      ev.writable = (src.events & EPOLLOUT) != 0;
      ev.hangup = (src.events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    return static_cast<std::size_t>(n);
  }

  IoBackend backend() const noexcept override { return IoBackend::kEpoll; }
  bool edge_triggered() const noexcept override { return true; }

 private:
  static constexpr std::size_t kWaitBatch = 256;

  struct Reg {
    int fd;
    void* data;
  };

  int epfd_;
  std::vector<epoll_event> buf_;
  std::vector<std::unique_ptr<Reg>> regs_;  ///< indexed by fd
};

#endif  // __linux__

}  // namespace

const char* io_backend_name(IoBackend backend) noexcept {
  switch (backend) {
    case IoBackend::kPoll:
      return "poll";
    case IoBackend::kEpoll:
      return "epoll";
  }
  return "unknown";
}

bool io_backend_available(IoBackend backend) noexcept {
#ifdef __linux__
  (void)backend;
  return true;
#else
  return backend == IoBackend::kPoll;
#endif
}

IoBackend default_io_backend() noexcept {
#ifdef __linux__
  return IoBackend::kEpoll;
#else
  return IoBackend::kPoll;
#endif
}

bool parse_io_backend(const char* text, IoBackend& out) noexcept {
  if (text == nullptr) return false;
  if (std::strcmp(text, "poll") == 0) {
    out = IoBackend::kPoll;
    return true;
  }
  if (std::strcmp(text, "epoll") == 0) {
    out = IoBackend::kEpoll;
    return true;
  }
  return false;
}

std::vector<IoBackend> available_io_backends() {
  std::vector<IoBackend> backends{default_io_backend()};
  if (backends[0] != IoBackend::kPoll) backends.push_back(IoBackend::kPoll);
  return backends;
}

std::unique_ptr<EventPoller> EventPoller::create(IoBackend backend) {
  switch (backend) {
    case IoBackend::kPoll:
      return std::make_unique<PollPoller>();
    case IoBackend::kEpoll:
#ifdef __linux__
    {
      const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
      if (epfd < 0) return nullptr;
      return std::make_unique<EpollPoller>(epfd);
    }
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Waker::Waker() {
#ifdef __linux__
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd >= 0) {
    read_fd_ = efd;
    write_fd_ = efd;
    return;
  }
#endif
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) == 0) {
    read_fd_ = fds[0];
    write_fd_ = fds[1];
  }
}

Waker::~Waker() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
}

void Waker::wake() noexcept {
  // The RMW chain on pending_ is totally ordered: reading `false` means the
  // doorbell is quiet and exactly one producer (us) rings it; reading `true`
  // means an un-drained ring is already pending, so the consumer is
  // guaranteed a wakeup without another syscall.
  if (pending_.exchange(true, std::memory_order_acq_rel)) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = retry_eintr(
      [&] { return ::write(write_fd_, &one, write_fd_ == read_fd_ ? sizeof one : 1); });
  // A full pipe already guarantees a pending wakeup; the result is moot.
}

void Waker::drain() noexcept {
  // Swallow the ring(s) first, then re-open the coalescing window: a
  // producer observing pending_ == true afterwards raced this drain and its
  // work is consumed by the pass that called us; one observing false rings
  // fresh. Clearing before reading would let a ring land between the clear
  // and the read and be swallowed with no pending flag left — a lost wakeup.
  std::uint64_t sink[32];
  while (retry_eintr([&] { return ::read(read_fd_, sink, sizeof sink); }) > 0) {
  }
  pending_.exchange(false, std::memory_order_acq_rel);
}

}  // namespace rafiki::net
