// Tests for the parameter-identification stage (Sections 3.4, 4.5, 4.10):
// the one-at-a-time ANOVA screen, the family-redundancy skip, and the
// ScyllaDB strip-and-refill selection procedure. Reduced measurement budgets
// keep these fast; the full-budget ranking is bench/fig05_anova.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/rafiki.h"
#include "engine/scylla.h"

namespace rafiki::core {
namespace {

RafikiOptions anova_options() {
  RafikiOptions options;
  options.collect.measure.ops = 12000;
  options.collect.measure.warmup_ops = 2000;
  options.collect.measure.noise_sd = 0.0;
  options.base_workload.initial_keys = 15000;
  options.anova_repeats = 2;
  return options;
}

class AnovaStageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rafiki_ = new Rafiki(anova_options());
    rafiki_->rank_parameters();
  }
  static void TearDownTestSuite() {
    delete rafiki_;
    rafiki_ = nullptr;
  }
  static Rafiki* rafiki_;
};

Rafiki* AnovaStageTest::rafiki_ = nullptr;

TEST_F(AnovaStageTest, RanksEveryRegisteredParameter) {
  const auto& ranking = rafiki_->rank_parameters();
  EXPECT_EQ(ranking.size(), engine::kParamCount);
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].score, ranking[i].score) << "ranking not sorted";
  }
}

TEST_F(AnovaStageTest, CompactionMethodNearTheTop) {
  const auto& ranking = rafiki_->rank_parameters();
  std::size_t cm_rank = engine::kParamCount;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].id == engine::ParamId::kCompactionMethod) cm_rank = i;
  }
  EXPECT_LT(cm_rank, 3u) << "CM should dominate the screen (paper Section 4.5)";
}

TEST_F(AnovaStageTest, SignificantParamsHaveSmallPValues) {
  const auto& ranking = rafiki_->rank_parameters();
  EXPECT_LT(ranking.front().p_value, 0.05);
  // The long tail should include clearly insignificant parameters.
  EXPECT_GT(ranking.back().p_value, 0.05);
}

TEST_F(AnovaStageTest, SelectionSkipsRedundantFlushParams) {
  const auto& selected = rafiki_->select_key_params();
  EXPECT_EQ(selected.size(), 5u);
  for (auto id : selected) {
    EXPECT_EQ(engine::param_spec(id).redundant_with, engine::ParamId::kCount)
        << engine::param_name(id) << " is redundant with the canonical flush knob";
  }
}

TEST(AnovaScyllaTest, SelectionStripsIgnoredParams) {
  auto options = anova_options();
  options.scylla = true;
  Rafiki rafiki(options);
  const auto& selected = rafiki.select_key_params();
  EXPECT_EQ(selected.size(), 5u);
  const auto& ignored = engine::ScyllaServer::ignored_params();
  for (auto id : selected) {
    EXPECT_EQ(std::find(ignored.begin(), ignored.end(), id), ignored.end())
        << engine::param_name(id) << " is ignored by the ScyllaDB auto-tuner";
  }
}

TEST(AnovaSelectionTest, SetKeyParamsBypassesTheScreen) {
  Rafiki rafiki(anova_options());
  rafiki.set_key_params({engine::ParamId::kCompactionMethod,
                         engine::ParamId::kFileCacheSizeMb});
  const auto& selected = rafiki.select_key_params();
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], engine::ParamId::kCompactionMethod);
}

TEST(AnovaSelectionTest, AutomaticCutoffStaysInBounds) {
  auto options = anova_options();
  options.key_param_count = 0;  // distinct-drop heuristic
  Rafiki rafiki(options);
  const auto& selected = rafiki.select_key_params();
  EXPECT_GE(selected.size(), 3u);
  EXPECT_LE(selected.size(), 8u);
}

}  // namespace
}  // namespace rafiki::core
