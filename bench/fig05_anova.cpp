// Figure 5 + Section 4.5: one-at-a-time ANOVA screen over the registered
// configuration parameters, ranked by the standard deviation of per-level
// mean throughput. The paper reports that Compaction Method dominates (11x
// the runner-up, removed from their plot for visibility) and that a distinct
// drop separates the top-5 "key parameters" from the rest.
#include <cstdio>

#include "bench/common.h"

using namespace rafiki;

int main() {
  auto options = benchutil::paper_options();
  options.anova_repeats = 3;
  options.anova_read_ratio = 0.45;  // representative mixed MG-RAST traffic
  options.key_param_count = 0;     // let the distinct-drop heuristic pick k
  core::Rafiki rafiki(options);

  benchutil::note("running one-at-a-time parameter sweeps (ANOVA screen)...");
  const auto& ranking = rafiki.rank_parameters();

  Table fig({"rank", "parameter", "stddev of level means (ops/s)", "F", "p-value"});
  for (std::size_t i = 0; i < ranking.size() && i < 20; ++i) {
    const auto& entry = ranking[i];
    char fbuf[32], pbuf[32];
    std::snprintf(fbuf, sizeof fbuf, "%.1f", entry.f_statistic);
    std::snprintf(pbuf, sizeof pbuf, "%.2g", entry.p_value);
    fig.add_row({std::to_string(i + 1), std::string(engine::param_name(entry.id)),
                 Table::ops(entry.score), fbuf, pbuf});
  }
  benchutil::emit(fig, "Figure 5: ANOVA ranking (top 20 parameters)");

  const auto& selected = rafiki.select_key_params();
  std::string chosen;
  for (auto id : selected) {
    if (!chosen.empty()) chosen += ", ";
    chosen += std::string(engine::param_name(id));
  }
  benchutil::note("selected key parameters: " + chosen);

  const double dominance = ranking[1].score > 0 ? ranking[0].score / ranking[1].score : 0;
  std::size_t paper_overlap = 0;
  std::size_t compaction_related_in_top5 = 0;
  const engine::ParamId compaction_family[] = {
      engine::ParamId::kCompactionMethod, engine::ParamId::kMinCompactionThreshold,
      engine::ParamId::kMaxCompactionThreshold, engine::ParamId::kCompactionThroughputMbs,
      engine::ParamId::kConcurrentCompactors, engine::ParamId::kMemtableCleanupThreshold};
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranking.size()); ++i) {
    for (auto id : engine::key_params()) paper_overlap += ranking[i].id == id;
    for (auto id : compaction_family) compaction_related_in_top5 += ranking[i].id == id;
  }

  benchutil::compare("dominant parameter", "Compaction Method (11x runner-up)",
                     std::string(engine::param_name(ranking[0].id)) + " (" +
                         Table::num(dominance, 1) + "x runner-up)");
  benchutil::compare("key-parameter count (distinct drop)", "5",
                     std::to_string(selected.size()));
  benchutil::compare("paper's five among our top 5", "5 of 5",
                     std::to_string(paper_overlap) +
                         " of 5 (simulator sensitivities differ; see EXPERIMENTS.md)");
  benchutil::compare("chief parameters are compaction/flush-related (claim #4)", "yes",
                     std::to_string(compaction_related_in_top5) + " of top 5");
  return 0;
}
