// Workload description and the operation vocabulary shared by the workload
// generators and the storage engine.
//
// Following Section 3.3 of the paper, a workload is characterized by two key
// statistics: the Read Ratio (RR) — fraction of read queries — and the Key
// Reuse Distance (KRD) — the number of queries that pass before the same key
// is re-accessed, summarized by fitting an exponential distribution. The
// payload size and key-space cardinality complete the description needed to
// drive a synthetic benchmark.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rafiki::workload {

/// A single datastore operation.
struct Op {
  enum class Kind : std::uint8_t { kRead, kInsert, kUpdate, kDelete };
  Kind kind = Kind::kRead;
  std::int64_t key = 0;
  std::uint32_t value_bytes = 0;
};

/// Parametric description of a workload, sufficient to synthesize an op
/// stream matching MG-RAST-style access patterns.
struct WorkloadSpec {
  /// Fraction of operations that are reads, in [0, 1]. Writes split between
  /// updates of existing keys and inserts of fresh keys.
  double read_ratio = 0.5;

  /// Mean of the exponential key-reuse-distance distribution, measured in
  /// queries. MG-RAST exhibits very large KRD (poor cache locality); the
  /// paper treats KRD as stationary for its domain and uses it to configure
  /// data collection rather than as a model feature.
  double krd_mean = 60000.0;

  /// Fraction of non-read operations that insert a brand-new key (the rest
  /// update existing keys). MG-RAST pipelines re-insert derived subsequences,
  /// so inserts are a substantial share of writes.
  double insert_fraction = 0.5;

  /// Fraction of non-read operations that delete an existing key (write a
  /// tombstone). Small for MG-RAST — analyses retire intermediate products
  /// occasionally. Carved out of the update share.
  double delete_fraction = 0.0;

  /// Mean payload size per value in bytes (annotation/feature records; the
  /// engine's cost model is calibrated around this magnitude).
  std::uint32_t value_bytes = 256;

  /// Number of distinct keys pre-existing in the store before measurement.
  std::size_t initial_keys = 40000;

  /// Construct the spec the paper's experiments sweep: everything fixed at
  /// MG-RAST-like values except the read ratio.
  static WorkloadSpec with_read_ratio(double rr) {
    WorkloadSpec spec;
    spec.read_ratio = rr;
    return spec;
  }
};

}  // namespace rafiki::workload
