file(REMOVE_RECURSE
  "CMakeFiles/engine_storage_test.dir/engine_storage_test.cpp.o"
  "CMakeFiles/engine_storage_test.dir/engine_storage_test.cpp.o.d"
  "engine_storage_test"
  "engine_storage_test.pdb"
  "engine_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
