# Empty dependencies file for fig08_09_error_hist.
# This may be replaced when dependencies are built.
