// EventPoller unit tests: backend selection helpers, the level-triggered
// poll() backend's incremental registration bookkeeping (slot reuse after
// del), the epoll backend's edge-trigger semantics (one report per
// transition, re-edge on new data, registration-time readiness), and the
// Waker's wake-coalescing contract. These are the invariants net::Server
// leans on; the e2e suite exercises them only indirectly.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/poller.h"

namespace rafiki::net {
namespace {

/// Nonblocking AF_UNIX stream pair; both ends closed by the destructor.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                     fds) == 0) {
      a = fds[0];
      b = fds[1];
    }
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_b() {
    ::close(b);
    b = -1;
  }
};

void write_byte(int fd) {
  const std::uint8_t byte = 0x5a;
  ASSERT_EQ(::send(fd, &byte, 1, MSG_NOSIGNAL), 1);
}

void drain_fd(int fd) {
  std::uint8_t chunk[256];
  while (::recv(fd, chunk, sizeof chunk, 0) > 0) {
  }
}

/// The event for `fd` out of one wait() pass, or nullptr.
const PollerEvent* find_event(const std::vector<PollerEvent>& events, int fd) {
  for (const auto& event : events) {
    if (event.fd == fd) return &event;
  }
  return nullptr;
}

TEST(IoBackendHelpers, NamesParseAndAvailability) {
  EXPECT_STREQ(io_backend_name(IoBackend::kPoll), "poll");
  EXPECT_STREQ(io_backend_name(IoBackend::kEpoll), "epoll");

  IoBackend parsed = IoBackend::kEpoll;
  ASSERT_TRUE(parse_io_backend("poll", parsed));
  EXPECT_EQ(parsed, IoBackend::kPoll);
  ASSERT_TRUE(parse_io_backend("epoll", parsed));
  EXPECT_EQ(parsed, IoBackend::kEpoll);
  EXPECT_FALSE(parse_io_backend("kqueue", parsed));
  EXPECT_FALSE(parse_io_backend("", parsed));
  EXPECT_FALSE(parse_io_backend(nullptr, parsed));

  // poll() exists everywhere; the default must be constructible, and the
  // sweep list leads with it so benches compare against the platform choice.
  EXPECT_TRUE(io_backend_available(IoBackend::kPoll));
  EXPECT_TRUE(io_backend_available(default_io_backend()));
  const auto backends = available_io_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), default_io_backend());
  for (const auto backend : backends) {
    EXPECT_TRUE(io_backend_available(backend));
    auto poller = EventPoller::create(backend);
    ASSERT_NE(poller, nullptr) << io_backend_name(backend);
    EXPECT_EQ(poller->backend(), backend);
  }
#ifdef __linux__
  EXPECT_TRUE(io_backend_available(IoBackend::kEpoll));
  EXPECT_EQ(default_io_backend(), IoBackend::kEpoll);
#else
  EXPECT_FALSE(io_backend_available(IoBackend::kEpoll));
  EXPECT_EQ(default_io_backend(), IoBackend::kPoll);
  EXPECT_EQ(EventPoller::create(IoBackend::kEpoll), nullptr);
#endif
}

TEST(PollPoller, ReportsReadinessPerInterestMaskAndHonorsMod) {
  auto poller = EventPoller::create(IoBackend::kPoll);
  ASSERT_NE(poller, nullptr);
  EXPECT_FALSE(poller->edge_triggered());

  SocketPair pair;
  ASSERT_GE(pair.a, 0);
  int tag_a = 0;
  ASSERT_TRUE(poller->add(pair.a, true, false, &tag_a));

  std::vector<PollerEvent> events;
  EXPECT_EQ(poller->wait(0, events), 0u);  // nothing pending yet

  write_byte(pair.b);
  events.clear();
  ASSERT_EQ(poller->wait(1000, events), 1u);
  EXPECT_EQ(events[0].fd, pair.a);
  EXPECT_EQ(events[0].data, &tag_a);
  EXPECT_TRUE(events[0].readable);

  // Level-triggered: unconsumed data re-reports on every wait.
  events.clear();
  ASSERT_EQ(poller->wait(0, events), 1u);
  EXPECT_TRUE(events[0].readable);

  // Interest mask off: pending data goes silent without being consumed.
  ASSERT_TRUE(poller->mod(pair.a, false, false));
  events.clear();
  EXPECT_EQ(poller->wait(0, events), 0u);

  // Write interest on a stream socket with buffer space: writable.
  ASSERT_TRUE(poller->mod(pair.a, false, true));
  events.clear();
  ASSERT_EQ(poller->wait(0, events), 1u);
  EXPECT_TRUE(events[0].writable);
  EXPECT_FALSE(events[0].readable);

  ASSERT_TRUE(poller->del(pair.a));
  EXPECT_FALSE(poller->del(pair.a));  // unknown now
  EXPECT_FALSE(poller->mod(pair.a, true, false));
  events.clear();
  EXPECT_EQ(poller->wait(0, events), 0u);
}

TEST(PollPoller, SlotReuseAfterSwapRemoveKeepsDataPointersStraight) {
  auto poller = EventPoller::create(IoBackend::kPoll);
  ASSERT_NE(poller, nullptr);

  // Three registrations, delete the middle one (swap-remove moves the last
  // registration into its slot), then register a fourth: every event must
  // still carry the data pointer its fd was registered with.
  SocketPair p1;
  SocketPair p2;
  SocketPair p3;
  SocketPair p4;
  int tag1 = 1;
  int tag2 = 2;
  int tag3 = 3;
  int tag4 = 4;
  ASSERT_TRUE(poller->add(p1.a, true, false, &tag1));
  ASSERT_TRUE(poller->add(p2.a, true, false, &tag2));
  ASSERT_TRUE(poller->add(p3.a, true, false, &tag3));
  ASSERT_TRUE(poller->del(p2.a));
  ASSERT_TRUE(poller->add(p4.a, true, false, &tag4));

  write_byte(p1.b);
  write_byte(p2.b);  // deregistered: must not surface
  write_byte(p3.b);
  write_byte(p4.b);

  std::vector<PollerEvent> events;
  ASSERT_EQ(poller->wait(1000, events), 3u);
  EXPECT_EQ(find_event(events, p2.a), nullptr);
  const auto* e1 = find_event(events, p1.a);
  const auto* e3 = find_event(events, p3.a);
  const auto* e4 = find_event(events, p4.a);
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e3, nullptr);
  ASSERT_NE(e4, nullptr);
  EXPECT_EQ(e1->data, &tag1);
  EXPECT_EQ(e3->data, &tag3);
  EXPECT_EQ(e4->data, &tag4);
}

TEST(PollPoller, ReportsHangupWhenPeerCloses) {
  auto poller = EventPoller::create(IoBackend::kPoll);
  ASSERT_NE(poller, nullptr);

  SocketPair pair;
  int tag = 0;
  ASSERT_TRUE(poller->add(pair.a, true, false, &tag));
  pair.close_b();

  std::vector<PollerEvent> events;
  ASSERT_GE(poller->wait(1000, events), 1u);
  const auto* event = find_event(events, pair.a);
  ASSERT_NE(event, nullptr);
  // POLLHUP (hangup) and/or POLLIN-for-EOF; either way the consumer's next
  // recv() sees the FIN. All that matters is that *something* is reported.
  EXPECT_TRUE(event->hangup || event->readable);
}

#ifdef __linux__
TEST(EpollPoller, ReportsOncePerTransitionAndReEdgesOnNewData) {
  auto poller = EventPoller::create(IoBackend::kEpoll);
  ASSERT_NE(poller, nullptr);
  EXPECT_TRUE(poller->edge_triggered());

  SocketPair pair;
  int tag = 0;
  ASSERT_TRUE(poller->add(pair.a, true, false, &tag));

  // Registration-time readiness: the fd was writable before add(), so the
  // first wait reports the pre-existing state exactly once...
  std::vector<PollerEvent> events;
  ASSERT_EQ(poller->wait(1000, events), 1u);
  EXPECT_EQ(events[0].data, &tag);
  EXPECT_TRUE(events[0].writable);
  EXPECT_FALSE(events[0].readable);
  // ...and edge triggering means no transition -> no report, forever.
  events.clear();
  EXPECT_EQ(poller->wait(0, events), 0u);

  // New data is a read transition: reported once, then silent again even
  // though the byte stays unconsumed (this is why the server must keep its
  // own read-ready flag until recv() says EAGAIN).
  write_byte(pair.b);
  events.clear();
  ASSERT_EQ(poller->wait(1000, events), 1u);
  EXPECT_TRUE(events[0].readable);
  events.clear();
  EXPECT_EQ(poller->wait(0, events), 0u);

  // More data re-edges even with the old byte still buffered...
  write_byte(pair.b);
  events.clear();
  ASSERT_EQ(poller->wait(1000, events), 1u);
  EXPECT_TRUE(events[0].readable);

  // ...and a drained buffer plus fresh data is a clean new transition.
  drain_fd(pair.a);
  events.clear();
  EXPECT_EQ(poller->wait(0, events), 0u);
  write_byte(pair.b);
  events.clear();
  ASSERT_EQ(poller->wait(1000, events), 1u);
  EXPECT_TRUE(events[0].readable);

  ASSERT_TRUE(poller->del(pair.a));
  EXPECT_FALSE(poller->del(pair.a));
  drain_fd(pair.a);
  write_byte(pair.b);
  events.clear();
  EXPECT_EQ(poller->wait(0, events), 0u);  // deregistered fds stay silent
}

TEST(EpollPoller, ModIsAcceptedAsANoOpOnRegisteredFds) {
  auto poller = EventPoller::create(IoBackend::kEpoll);
  ASSERT_NE(poller, nullptr);

  SocketPair pair;
  int tag = 0;
  ASSERT_TRUE(poller->add(pair.a, true, false, &tag));
  // The edge-triggered backend subscribes to both directions up front; the
  // server still calls mod() symmetrically with the poll backend, and those
  // calls must succeed without disturbing the registration.
  EXPECT_TRUE(poller->mod(pair.a, false, false));
  EXPECT_TRUE(poller->mod(pair.a, true, true));

  write_byte(pair.b);
  std::vector<PollerEvent> events;
  ASSERT_GE(poller->wait(1000, events), 1u);
  const auto* event = find_event(events, pair.a);
  ASSERT_NE(event, nullptr);
  EXPECT_TRUE(event->readable);
}

TEST(EpollPoller, ReportsHangupWhenPeerCloses) {
  auto poller = EventPoller::create(IoBackend::kEpoll);
  ASSERT_NE(poller, nullptr);

  SocketPair pair;
  int tag = 0;
  ASSERT_TRUE(poller->add(pair.a, true, false, &tag));
  std::vector<PollerEvent> events;
  poller->wait(0, events);  // consume the registration-time writable edge

  pair.close_b();
  events.clear();
  ASSERT_GE(poller->wait(1000, events), 1u);
  const auto* event = find_event(events, pair.a);
  ASSERT_NE(event, nullptr);
  EXPECT_TRUE(event->hangup || event->readable);
}
#endif  // __linux__

TEST(WakerTest, CoalescesWakesUntilDrainedThenReRings) {
  Waker waker;
  ASSERT_TRUE(waker.valid());

  const auto readable = [&]() -> bool {
    pollfd pfd{waker.read_fd(), POLLIN, 0};
    return ::poll(&pfd, 1, 0) == 1 && (pfd.revents & POLLIN) != 0;
  };

  EXPECT_FALSE(readable());  // newborn: no pending ring

  // Any number of wakes between two drains ring the fd exactly once; the
  // extra calls are the coalesced no-syscall path.
  waker.wake();
  waker.wake();
  waker.wake();
  EXPECT_TRUE(readable());

  waker.drain();
  EXPECT_FALSE(readable());  // fully swallowed in one drain

  // The coalescing window re-opens after a drain: the next wake rings again.
  waker.wake();
  EXPECT_TRUE(readable());
  waker.drain();
  EXPECT_FALSE(readable());
}

TEST(RetryEintr, LoopsOnEintrAndPassesOtherResultsThrough) {
  int attempts = 0;
  const auto flaky = [&]() -> long {
    if (++attempts < 3) {
      errno = EINTR;
      return -1;
    }
    return 42;
  };
  EXPECT_EQ(retry_eintr(flaky), 42);
  EXPECT_EQ(attempts, 3);

  attempts = 0;
  const auto failing = [&]() -> long {
    ++attempts;
    errno = ECONNRESET;
    return -1;
  };
  EXPECT_EQ(retry_eintr(failing), -1);
  EXPECT_EQ(errno, ECONNRESET);
  EXPECT_EQ(attempts, 1);  // only EINTR retries
}

}  // namespace
}  // namespace rafiki::net
