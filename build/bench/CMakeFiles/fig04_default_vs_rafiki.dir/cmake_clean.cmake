file(REMOVE_RECURSE
  "CMakeFiles/fig04_default_vs_rafiki.dir/fig04_default_vs_rafiki.cpp.o"
  "CMakeFiles/fig04_default_vs_rafiki.dir/fig04_default_vs_rafiki.cpp.o.d"
  "fig04_default_vs_rafiki"
  "fig04_default_vs_rafiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_default_vs_rafiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
