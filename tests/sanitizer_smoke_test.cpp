// Deep end-to-end probe for the sanitizer build matrix (asan/tsan presets):
// exercises the full Rafiki pipeline — trace synthesis, characterization,
// data collection, surrogate ensemble training, GA search — in one process
// so ASan/UBSan/TSan see the real allocation and arithmetic patterns, not
// just unit-sized fragments. Kept small enough to finish quickly under
// sanitizer slowdown (~10-20x).
#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "collect/runner.h"
#include "core/rafiki.h"
#include "engine/params.h"
#include "workload/characterize.h"
#include "workload/mgrast.h"

namespace rafiki {
namespace {

TEST(SanitizerSmoke, FullPipelineCharacterizeTrainSearch) {
  // Stage 1: synthesize and characterize a short MG-RAST-like trace.
  workload::MgRastTraceOptions trace_options;
  trace_options.duration_s = 8 * 900.0;  // 8 windows
  const auto windows = workload::synthesize_mgrast_windows(trace_options, 42);
  ASSERT_FALSE(windows.empty());

  workload::WorkloadSpec base;
  const auto records =
      workload::synthesize_mgrast_queries(windows, 1500, base, 900.0, 43);
  const std::vector<double> candidates = {450.0, 900.0};
  const auto ch = workload::characterize(records, candidates);
  EXPECT_GT(ch.krd_mean, 0.0);
  ASSERT_FALSE(ch.read_ratios.empty());

  // Stages 3-5: collect a tiny lattice, train the ensemble, GA-search.
  core::RafikiOptions options;
  options.workload_grid = {0.2, 0.8};
  options.n_configs = 5;
  options.collect.measure.ops = 3000;
  options.collect.measure.warmup_ops = 300;
  options.ensemble.n_nets = 3;
  options.ensemble.train.max_epochs = 30;
  options.ga.generations = 8;
  options.ga.population = 12;

  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  const auto dataset = rafiki.collect();
  ASSERT_GT(dataset.size(), 0u);

  rafiki.train(dataset);
  ASSERT_TRUE(rafiki.trained());

  const double read_ratio = std::clamp(ch.read_ratios.front(), 0.0, 1.0);
  const auto result = rafiki.optimize(read_ratio);
  EXPECT_TRUE(std::isfinite(result.predicted_throughput));
  EXPECT_GT(result.surrogate_evaluations, 0u);

  // Close the loop: the selected config must run on the live simulator.
  workload::WorkloadSpec verify_workload = options.base_workload;
  verify_workload.read_ratio = read_ratio;
  collect::MeasureOptions verify = options.collect.measure;
  verify.seed = 7;
  const double measured =
      collect::measure_throughput(result.config, verify_workload, verify);
  EXPECT_TRUE(std::isfinite(measured));
  EXPECT_GT(measured, 0.0);
}

TEST(SanitizerSmoke, ConcurrentMeasurementsAreIndependent) {
  // Each thread owns its Server and Rng stream, so parallel measurement must
  // be race-free; this is the probe that gives the tsan preset real work,
  // and the contract the ROADMAP's sharded multi-server engine builds on.
  constexpr int kThreads = 4;
  std::vector<double> throughput(kThreads, 0.0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &throughput] {
      workload::WorkloadSpec workload;
      workload.read_ratio = 0.2 + 0.2 * t;
      collect::MeasureOptions measure;
      measure.ops = 4000;
      measure.warmup_ops = 400;
      measure.seed = 100 + static_cast<std::uint64_t>(t);
      throughput[static_cast<std::size_t>(t)] =
          collect::measure_throughput(engine::Config::defaults(), workload, measure);
    });
  }
  for (auto& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(std::isfinite(throughput[static_cast<std::size_t>(t)])) << "thread " << t;
    EXPECT_GT(throughput[static_cast<std::size_t>(t)], 0.0) << "thread " << t;
  }
}

}  // namespace
}  // namespace rafiki
