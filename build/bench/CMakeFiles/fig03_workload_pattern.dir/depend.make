# Empty dependencies file for fig03_workload_pattern.
# This may be replaced when dependencies are built.
