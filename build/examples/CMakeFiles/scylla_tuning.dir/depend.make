# Empty dependencies file for scylla_tuning.
# This may be replaced when dependencies are built.
