// Determinism regression test (tools/lint_rules.md): the full pipeline —
// collect, surrogate training, GA search — run twice from the same seed must
// produce bit-identical surrogate weights and the same selected config.
// Every result table in bench/ silently depends on this property.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/rafiki.h"
#include "engine/params.h"
#include "ml/mlp.h"

namespace rafiki {
namespace {

core::RafikiOptions tiny_options() {
  core::RafikiOptions options;
  options.workload_grid = {0.2, 0.5, 0.8};
  options.n_configs = 6;
  options.collect.measure.ops = 4000;
  options.collect.measure.warmup_ops = 500;
  options.ensemble.n_nets = 4;
  options.ensemble.train.max_epochs = 40;
  options.ga.generations = 12;
  options.ga.population = 16;
  return options;
}

struct PipelineRun {
  std::vector<std::vector<double>> member_params;
  engine::Config best_config;
  double predicted = 0.0;
};

PipelineRun run_pipeline(const core::RafikiOptions& options) {
  core::Rafiki rafiki(options);
  rafiki.set_key_params(engine::key_params());
  const auto dataset = rafiki.collect();
  rafiki.train(dataset);
  const auto result = rafiki.optimize(/*read_ratio=*/0.8);

  PipelineRun run;
  for (const auto& net : rafiki.surrogate().nets()) {
    run.member_params.emplace_back(net.params().begin(), net.params().end());
  }
  run.best_config = result.config;
  run.predicted = result.predicted_throughput;
  return run;
}

TEST(Determinism, PipelineIsBitIdenticalAcrossRuns) {
  const auto options = tiny_options();
  const auto first = run_pipeline(options);
  const auto second = run_pipeline(options);

  ASSERT_FALSE(first.member_params.empty());
  ASSERT_EQ(first.member_params.size(), second.member_params.size());
  for (std::size_t n = 0; n < first.member_params.size(); ++n) {
    const auto& a = first.member_params[n];
    const auto& b = second.member_params[n];
    ASSERT_EQ(a.size(), b.size()) << "net " << n;
    // memcmp, not ==: NaN != NaN would mask a corrupted-but-unequal weight,
    // and bit-identity is the actual contract.
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << "net " << n << " weights differ between identically-seeded runs";
  }

  EXPECT_EQ(first.best_config, second.best_config)
      << "GA selected different configs: " << first.best_config.to_string()
      << " vs " << second.best_config.to_string();
  EXPECT_EQ(0, std::memcmp(&first.predicted, &second.predicted, sizeof(double)));
}

TEST(Determinism, ParallelEnsembleTrainingIsBitIdenticalToSerial) {
  // SurrogateEnsemble::fit trains members on a thread pool; per-member RNGs
  // are pre-split serially from the ensemble seed, so the schedule cannot
  // leak into the weights. Thread counts are forced explicitly (1 vs 4)
  // because hardware_concurrency on the CI box may itself be 1.
  auto options = tiny_options();
  options.ensemble.train_threads = 1;  // strictly serial reference
  const auto serial = run_pipeline(options);
  options.ensemble.train_threads = 4;
  const auto parallel = run_pipeline(options);

  ASSERT_FALSE(serial.member_params.empty());
  ASSERT_EQ(serial.member_params.size(), parallel.member_params.size());
  for (std::size_t n = 0; n < serial.member_params.size(); ++n) {
    const auto& a = serial.member_params[n];
    const auto& b = parallel.member_params[n];
    ASSERT_EQ(a.size(), b.size()) << "net " << n;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << "net " << n << " weights differ between serial and parallel training";
  }
  EXPECT_EQ(serial.best_config, parallel.best_config);
  EXPECT_EQ(0, std::memcmp(&serial.predicted, &parallel.predicted, sizeof(double)));
}

TEST(Determinism, DifferentSeedsActuallyChangeTheRun) {
  // Guards the test above against vacuity: if seeds were ignored somewhere,
  // both tests would pass while the pipeline ignored its inputs.
  auto options = tiny_options();
  const auto first = run_pipeline(options);
  options.ensemble.seed ^= 0xdecafbadull;
  options.collect.measure.seed ^= 0x1234ull;
  const auto second = run_pipeline(options);

  ASSERT_EQ(first.member_params.size(), second.member_params.size());
  bool any_diff = false;
  for (std::size_t n = 0; n < first.member_params.size() && !any_diff; ++n) {
    any_diff = first.member_params[n] != second.member_params[n];
  }
  EXPECT_TRUE(any_diff) << "reseeding the ensemble left every weight unchanged";
}

}  // namespace
}  // namespace rafiki
