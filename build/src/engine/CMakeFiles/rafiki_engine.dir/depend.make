# Empty dependencies file for rafiki_engine.
# This may be replaced when dependencies are built.
