// Online reconfiguration controller for dynamic workloads (Sections 1, 2.4.1).
//
// MG-RAST's read ratio shifts abruptly at the 15-minute scale; a static
// configuration is suboptimal most of the time. The controller watches the
// characterized read ratio per window, re-runs the GA against the trained
// surrogate when the workload moves materially (seconds of work, Section
// 4.8), memoizes optimized configurations per read-ratio bucket, and charges
// a reconfiguration downtime when the configuration actually changes.
#pragma once

#include <cstddef>
#include <functional>
#include <map>

#include "core/rafiki.h"

namespace rafiki::core {

struct OnlineTunerOptions {
  /// Re-optimize when the window's RR moved at least this far from the RR
  /// the current configuration was chosen for.
  double rr_change_threshold = 0.15;
  /// Memoization granularity for optimized configs.
  double rr_bucket = 0.1;
  /// Virtual seconds of degraded service when a new config is applied
  /// (rolling restart); charged by the replay harness.
  double reconfigure_downtime_s = 15.0;
};

class OnlineTuner {
 public:
  /// `rafiki` must already be trained; the tuner holds a reference.
  OnlineTuner(const Rafiki& rafiki, OnlineTunerOptions options = {});

  struct Decision {
    engine::Config config;
    bool reconfigured = false;
    double predicted_throughput = 0.0;
  };
  /// Feeds the next observed window; returns the configuration to run with.
  Decision on_window(double read_ratio);

  /// Pre-computes (and caches) the optimized configuration for a forecast
  /// read ratio (see workload::WorkloadForecaster), so an anticipated regime
  /// switch pays no optimizer latency inside the critical window.
  void prefetch(double read_ratio);

  /// Called whenever a freshly optimized configuration enters the memo cache
  /// (on_window miss or prefetch). The serve layer hooks this to republish
  /// the result through its versioned snapshot registry, so every tuned
  /// config the background path produces becomes visible to in-flight
  /// readers without locking them.
  using PublishHook = std::function<void(int bucket, const Rafiki::OptimizeResult& result)>;
  void set_publish_hook(PublishHook hook) { publish_ = std::move(hook); }

  /// Memoization key shared by on_window and prefetch.
  int bucket_for(double read_ratio) const noexcept;

  std::size_t reconfigurations() const noexcept { return reconfigurations_; }
  std::size_t optimizer_runs() const noexcept { return optimizer_runs_; }
  const OnlineTunerOptions& options() const noexcept { return options_; }

 private:
  /// Cache lookup with optimize-on-miss; new entries flow to the publish hook.
  const Rafiki::OptimizeResult& optimized_for(double read_ratio);

  const Rafiki* rafiki_;
  OnlineTunerOptions options_;
  PublishHook publish_;
  std::map<int, Rafiki::OptimizeResult> cache_;  // bucket -> optimized result
  engine::Config current_ = engine::Config::defaults();
  double current_rr_ = -1.0;  // RR the current config was chosen for
  bool have_config_ = false;
  std::size_t reconfigurations_ = 0;
  std::size_t optimizer_runs_ = 0;
};

}  // namespace rafiki::core
