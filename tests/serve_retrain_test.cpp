// RetrainWorker and the stale-while-revalidate ObserveWindow path: lifecycle
// edges (stop-before-start, stop with a retrain in flight, drain vs cancel),
// per-bucket coalescing of duplicate requests into one GA run, the
// stale-then-fresh window sequence under an injected clock, tuned entries
// buffered until the first real snapshot publish, and the tuner's internal
// synchronization under concurrent on_window/prefetch callers (a tsan probe).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online.h"
#include "core/rafiki.h"
#include "engine/params.h"
#include "serve/retrain.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace rafiki::serve {
namespace {

// ---------------------------------------------------------------------------
// RetrainWorker alone, driven by an instrumented RunFn.

class WorkerHarness {
 public:
  RetrainWorker::RunFn fn() {
    return [this](int bucket, double /*read_ratio*/) {
      gate_.wait();
      std::lock_guard<std::mutex> lock(mutex_);
      ++runs_[bucket];
    };
  }

  /// Blocks every run until release() — keeps tasks deterministically
  /// queued/in-flight while the test enqueues more.
  void hold() { gate_.close(); }
  void release() { gate_.open(); }

  int runs(int bucket) {
    std::lock_guard<std::mutex> lock(mutex_);
    return runs_[bucket];
  }
  int total_runs() {
    std::lock_guard<std::mutex> lock(mutex_);
    int total = 0;
    for (const auto& [bucket, count] : runs_) total += count;
    return total;
  }

 private:
  class Gate {
   public:
    void close() {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = false;
    }
    void open() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        open_ = true;
      }
      cv_.notify_all();
    }
    void wait() {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return open_; });
    }

   private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = true;
  };

  Gate gate_;
  std::mutex mutex_;
  std::map<int, int> runs_;
};

TEST(RetrainWorker, StopBeforeStartCancelsBacklogWithoutLosingFutures) {
  WorkerHarness harness;
  ServiceStats stats;
  RetrainWorker worker(harness.fn(), {}, &stats);

  const auto a = worker.enqueue(1, 0.1);
  const auto b = worker.enqueue(2, 0.2);
  ASSERT_EQ(a.result, RetrainEnqueue::kEnqueued);
  ASSERT_EQ(b.result, RetrainEnqueue::kEnqueued);
  EXPECT_EQ(worker.depth(), 2u);

  worker.stop(/*drain=*/false);  // never started: nothing may hang
  EXPECT_EQ(a.done.get(), RetrainOutcome::kCancelled);
  EXPECT_EQ(b.done.get(), RetrainOutcome::kCancelled);
  EXPECT_EQ(harness.total_runs(), 0);
  EXPECT_EQ(stats.retrain_counters().cancelled, 2u);
  EXPECT_EQ(stats.retrain_counters().runs, 0u);

  // After stop, enqueues report kStopped with an already-resolved future.
  const auto late = worker.enqueue(3, 0.3);
  EXPECT_EQ(late.result, RetrainEnqueue::kStopped);
  EXPECT_EQ(late.done.get(), RetrainOutcome::kCancelled);
  worker.wait_idle();  // returns immediately on a stopped worker
}

TEST(RetrainWorker, DrainStopRunsTheQueuedBacklog) {
  WorkerHarness harness;
  ServiceStats stats;
  RetrainWorker worker(harness.fn(), {}, &stats);
  std::vector<RetrainWorker::Ticket> tickets;
  for (int bucket = 1; bucket <= 3; ++bucket) {
    tickets.push_back(worker.enqueue(bucket, 0.1 * bucket));
  }
  worker.start();
  worker.stop(/*drain=*/true);
  for (auto& ticket : tickets) EXPECT_EQ(ticket.done.get(), RetrainOutcome::kCompleted);
  EXPECT_EQ(harness.total_runs(), 3);
  EXPECT_EQ(stats.retrain_counters().runs, 3u);
  EXPECT_EQ(stats.retrain_counters().cancelled, 0u);
}

TEST(RetrainWorker, CancelStopFinishesInFlightTaskButDropsQueued) {
  WorkerHarness harness;
  harness.hold();
  ServiceStats stats;
  RetrainWorker worker(harness.fn(), {}, &stats);
  worker.start();

  const auto in_flight = worker.enqueue(1, 0.1);
  // Wait until the worker picked task 1 up (depth drops to 0; the run is
  // blocked on the gate), then queue a second bucket behind it.
  while (worker.depth() != 0) std::this_thread::yield();
  const auto queued = worker.enqueue(2, 0.2);
  ASSERT_EQ(queued.result, RetrainEnqueue::kEnqueued);

  std::thread stopper([&] { worker.stop(/*drain=*/false); });
  // Only open the gate once the stop request is registered — otherwise the
  // worker could finish task 1 and legitimately pick task 2 up before the
  // cancel lands.
  while (!worker.stopping()) std::this_thread::yield();
  harness.release();
  stopper.join();

  // The in-flight run always completes; the queued one is cancelled.
  EXPECT_EQ(in_flight.done.get(), RetrainOutcome::kCompleted);
  EXPECT_EQ(queued.done.get(), RetrainOutcome::kCancelled);
  EXPECT_EQ(harness.runs(1), 1);
  EXPECT_EQ(harness.runs(2), 0);
  EXPECT_EQ(stats.retrain_counters().cancelled, 1u);
}

TEST(RetrainWorker, SameBucketRequestsCoalesceIntoOneRun) {
  WorkerHarness harness;
  harness.hold();  // nothing completes until every enqueue landed
  ServiceStats stats;
  RetrainWorker worker(harness.fn(), {}, &stats);
  worker.start();

  const auto first = worker.enqueue(7, 0.7);
  const auto dup1 = worker.enqueue(7, 0.7);
  const auto dup2 = worker.enqueue(7, 0.7);
  const auto other = worker.enqueue(8, 0.8);
  const auto dup3 = worker.enqueue(8, 0.8);
  ASSERT_EQ(first.result, RetrainEnqueue::kEnqueued);
  EXPECT_EQ(dup1.result, RetrainEnqueue::kCoalesced);
  EXPECT_EQ(dup2.result, RetrainEnqueue::kCoalesced);
  ASSERT_EQ(other.result, RetrainEnqueue::kEnqueued);
  EXPECT_EQ(dup3.result, RetrainEnqueue::kCoalesced);

  harness.release();
  worker.wait_idle();
  // N same-bucket requests -> one run per bucket; duplicates shared the
  // pending task's future.
  EXPECT_EQ(harness.runs(7), 1);
  EXPECT_EQ(harness.runs(8), 1);
  EXPECT_EQ(dup1.done.get(), RetrainOutcome::kCompleted);
  EXPECT_EQ(dup3.done.get(), RetrainOutcome::kCompleted);
  EXPECT_EQ(stats.retrain_counters().runs, 2u);
  EXPECT_EQ(stats.retrain_counters().coalesced, 3u);
  worker.stop();
}

TEST(RetrainWorker, FullQueueRejectsButCoalescingStillWins) {
  WorkerHarness harness;
  ServiceStats stats;
  RetrainOptions options;
  options.queue_capacity = 1;
  RetrainWorker worker(harness.fn(), options, &stats);  // never started

  ASSERT_EQ(worker.enqueue(1, 0.1).result, RetrainEnqueue::kEnqueued);
  // Queue full: a *new* bucket is rejected (future pre-resolved kCancelled)…
  const auto rejected = worker.enqueue(2, 0.2);
  EXPECT_EQ(rejected.result, RetrainEnqueue::kRejected);
  EXPECT_EQ(rejected.done.get(), RetrainOutcome::kCancelled);
  // …but a duplicate of the pending bucket still coalesces — it needs no slot.
  EXPECT_EQ(worker.enqueue(1, 0.1).result, RetrainEnqueue::kCoalesced);
  EXPECT_EQ(stats.retrain_counters().rejected, 1u);
  worker.stop(/*drain=*/false);
}

// ---------------------------------------------------------------------------
// Service-level: stale-while-revalidate against a real trained pipeline.

class ServeRetrain : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::RafikiOptions options;
    options.workload_grid = {0.2, 0.8};
    options.n_configs = 5;
    options.collect.measure.ops = 3000;
    options.collect.measure.warmup_ops = 300;
    options.ensemble.n_nets = 3;
    options.ensemble.train.max_epochs = 30;
    options.ga.generations = 6;
    options.ga.population = 10;
    rafiki_ = new core::Rafiki(options);
    rafiki_->set_key_params(engine::key_params());
    rafiki_->train(rafiki_->collect());
    ASSERT_TRUE(rafiki_->trained());
  }

  static void TearDownTestSuite() {
    delete rafiki_;
    rafiki_ = nullptr;
  }

  static Request window_request(double read_ratio) {
    Request request;
    request.endpoint = Endpoint::kObserveWindow;
    request.read_ratio = read_ratio;
    return request;
  }

  static core::Rafiki* rafiki_;
};

core::Rafiki* ServeRetrain::rafiki_ = nullptr;

TEST_F(ServeRetrain, StaleThenFreshSequenceUnderInjectedClock) {
  auto clock = std::make_shared<std::atomic<Tick>>(0);
  ServiceOptions options;
  options.workers = 1;
  options.clock_fn = [clock] { return clock->load(); };
  core::OnlineTuner tuner(*rafiki_);
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.attach_tuner(tuner);
  service.start();

  // t=0: cache miss — served stale, instantly, within its deadline.
  auto request = window_request(0.8);
  request.deadline = 5;
  const auto stale = service.call(request);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.stale);
  EXPECT_FALSE(stale.reconfigured);
  EXPECT_EQ(stale.config, engine::Config::defaults());

  // The same request past its virtual deadline is expired before any tuner
  // work — deadline triage still runs ahead of the observe path.
  clock->store(6);
  EXPECT_EQ(service.call(request).status, Status::kDeadlineExceeded);

  // Background optimization lands; the next window is fresh and adopts the
  // tuned config in the republished snapshot version.
  service.wait_retrain_idle();
  const auto fresh = service.call(window_request(0.8));
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.stale);
  EXPECT_TRUE(fresh.reconfigured);
  EXPECT_EQ(fresh.model_version, 2u);
  const auto snapshot = service.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(fresh.config, snapshot->tuned.at(tuner.bucket_for(0.8)).config);
  EXPECT_EQ(tuner.optimizer_runs(), 1u);
  service.stop();
}

TEST_F(ServeRetrain, SameBucketWindowsCoalesceIntoOneGaRun) {
  ServiceOptions options;
  options.workers = 2;
  core::OnlineTuner tuner(*rafiki_);
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.attach_tuner(tuner);

  // Queue a burst of same-bucket windows before any worker runs, then start:
  // however the request workers interleave, the bucket is optimized exactly
  // once (pending-task coalescing, or the memo cache once it landed).
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.submit(window_request(0.8)));
  service.start();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());

  service.wait_retrain_idle();
  EXPECT_EQ(tuner.optimizer_runs(), 1u);
  EXPECT_EQ(service.stats().retrain_counters().runs, 1u);
  const auto final_window = service.call(window_request(0.8));
  EXPECT_FALSE(final_window.stale);
  service.stop();
}

TEST_F(ServeRetrain, TunedEntriesBufferUntilFirstRealPublish) {
  ServiceOptions options;
  options.workers = 1;
  core::OnlineTuner tuner(*rafiki_);
  TuningService service(options);
  service.attach_tuner(tuner);  // note: nothing published yet
  service.start();

  // ObserveWindow works off the tuner's own pipeline, so it serves (stale)
  // even with no snapshot; the background optimization completes…
  const auto stale = service.call(window_request(0.2));
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.stale);
  service.wait_retrain_idle();
  EXPECT_EQ(tuner.optimizer_runs(), 1u);

  // …but no version was minted around an untrained default snapshot.
  EXPECT_EQ(service.model_version(), 0u);
  EXPECT_EQ(service.snapshot(), nullptr);

  // The first real publish folds the buffered tuned entry in.
  EXPECT_EQ(service.publish(make_snapshot(*rafiki_)), 1u);
  const auto snapshot = service.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->tuned.count(tuner.bucket_for(0.2)), 1u);
  service.stop();
}

TEST_F(ServeRetrain, PrefetchRoutesThroughTheRetrainWorker) {
  ServiceOptions options;
  options.workers = 1;
  core::OnlineTuner tuner(*rafiki_);
  TuningService service(options);
  service.publish(make_snapshot(*rafiki_));
  service.attach_tuner(tuner);
  service.start();

  // prefetch() with the async hook set enqueues instead of optimizing on the
  // calling thread; the result republishes exactly like an observe miss.
  tuner.prefetch(0.8);
  service.wait_retrain_idle();
  EXPECT_TRUE(tuner.cached(0.8));
  EXPECT_EQ(tuner.optimizer_runs(), 1u);
  EXPECT_EQ(service.model_version(), 2u);
  const auto snapshot = service.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->tuned.count(tuner.bucket_for(0.8)), 1u);

  // The prefetched regime's first window is already fresh.
  const auto window = service.call(window_request(0.8));
  ASSERT_TRUE(window.ok());
  EXPECT_FALSE(window.stale);
  EXPECT_TRUE(window.reconfigured);

  // A re-prefetch of a cached bucket is a no-op, not a new retrain.
  tuner.prefetch(0.8);
  service.wait_retrain_idle();
  EXPECT_EQ(tuner.optimizer_runs(), 1u);
  service.stop();
}

TEST_F(ServeRetrain, ConcurrentOnWindowAndPrefetchAreRaceFree) {
  // Satellite regression (tsan probe): standalone tuner — no service, no
  // async hook, so misses optimize inline — hammered by concurrent
  // on_window and prefetch callers. Before the tuner was internally
  // synchronized this raced on cache_/optimizer_runs_.
  core::OnlineTuner tuner(*rafiki_);
  const std::vector<double> ratios = {0.15, 0.45, 0.85};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 9; ++i) tuner.on_window(ratios[static_cast<std::size_t>(i) % 3]);
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 9; ++i) tuner.prefetch(ratios[static_cast<std::size_t>(i) % 3]);
    });
  }
  for (auto& thread : threads) thread.join();

  // Every regime ended up cached, and coalescing kept the GA to at most one
  // run per bucket.
  for (double rr : ratios) EXPECT_TRUE(tuner.cached(rr));
  EXPECT_LE(tuner.optimizer_runs(), ratios.size());
  EXPECT_GE(tuner.optimizer_runs(), 1u);
}

}  // namespace
}  // namespace rafiki::serve
