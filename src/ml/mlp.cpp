#include "ml/mlp.h"

#include <cmath>
#include <stdexcept>

#include "ml/activation.h"

namespace rafiki::ml {

Mlp::Mlp(std::vector<std::size_t> layer_sizes) : layers_(std::move(layer_sizes)) {
  if (layers_.size() < 2) throw std::invalid_argument("Mlp: need at least two layers");
  if (layers_.back() != 1) throw std::invalid_argument("Mlp: single-output networks only");
  std::size_t offset = 0;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    LayerView view;
    view.in = layers_[l];
    view.out = layers_[l + 1];
    view.w_offset = offset;
    offset += view.in * view.out;
    view.b_offset = offset;
    offset += view.out;
    views_.push_back(view);
  }
  params_.assign(offset, 0.0);
}

void Mlp::set_params(std::span<const double> params) {
  if (params.size() != params_.size()) throw std::invalid_argument("Mlp::set_params: size");
  std::copy(params.begin(), params.end(), params_.begin());
}

void Mlp::randomize(Rng& rng) {
  for (const auto& view : views_) {
    const double scale = 1.0 / std::sqrt(static_cast<double>(view.in));
    for (std::size_t i = 0; i < view.in * view.out; ++i) {
      params_[view.w_offset + i] = rng.uniform(-scale, scale);
    }
    for (std::size_t i = 0; i < view.out; ++i) {
      params_[view.b_offset + i] = rng.uniform(-0.1, 0.1);
    }
  }
}

double Mlp::forward(std::span<const double> x) const {
  if (x.size() != layers_.front()) throw std::invalid_argument("Mlp::forward: input size");
  std::vector<double> a(x.begin(), x.end());
  std::vector<double> z;
  for (std::size_t l = 0; l < views_.size(); ++l) {
    const auto& view = views_[l];
    z.assign(view.out, 0.0);
    for (std::size_t o = 0; o < view.out; ++o) {
      double s = params_[view.b_offset + o];
      const double* w = &params_[view.w_offset + o * view.in];
      for (std::size_t i = 0; i < view.in; ++i) s += w[i] * a[i];
      z[o] = l + 1 < views_.size() ? fast_tanh(s) : s;  // linear output layer
    }
    a = z;
  }
  return a[0];
}

std::vector<double> Mlp::forward_batch(const Matrix& x_rows) const {
  std::vector<double> out(x_rows.rows());
  BatchScratch scratch;
  forward_batch(x_rows, out, scratch);
  return out;
}

void Mlp::forward_batch(const Matrix& x_rows, std::span<double> out,
                        BatchScratch& scratch) const {
  if (x_rows.cols() != layers_.front()) {
    throw std::invalid_argument("Mlp::forward_batch: input size");
  }
  const std::size_t n = x_rows.rows();
  if (out.size() != n) throw std::invalid_argument("Mlp::forward_batch: out size");

  // Activations live transposed ([unit][row]) so every affine inner loop in
  // layer_affine_block is a unit-stride pass across the whole batch — the
  // vector lane is the batch dimension, which stays long no matter how
  // narrow a layer is. Transpose the input once, then ping-pong between the
  // two flat buffers.
  scratch.a.resize(n * layers_.front());
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = x_rows.row(r).data();
    for (std::size_t c = 0; c < layers_.front(); ++c) scratch.a[c * n + r] = row[c];
  }
  const double* in = scratch.a.data();
  const double* cur = nullptr;
  for (std::size_t l = 0; l < views_.size(); ++l) {
    const auto& view = views_[l];
    auto& dst = (l % 2 == 0) ? scratch.z : scratch.a;
    dst.resize(n * view.out);
    // Bias-first, ascending-input-index accumulation — the same per-element
    // order as forward(), so sums round identically (see activation.h).
    layer_affine_block(in, n, view.in, &params_[view.w_offset],
                       &params_[view.b_offset], dst.data(), view.out);
    // One SIMD activation sweep over the whole out x n block instead of a
    // scalar call per element; bit-identical to fast_tanh.
    if (l + 1 < views_.size()) fast_tanh_block(dst.data(), n * view.out);
    cur = dst.data();
    in = cur;
  }
  // The output layer has width 1, so its transposed block is the outputs.
  std::copy(cur, cur + n, out.begin());
}

double Mlp::forward_with_gradient(std::span<const double> x, std::span<double> grad) const {
  if (x.size() != layers_.front()) throw std::invalid_argument("Mlp: input size");
  if (grad.size() != params_.size()) throw std::invalid_argument("Mlp: grad size");

  // Forward pass, caching activations per layer.
  std::vector<std::vector<double>> acts;
  acts.emplace_back(x.begin(), x.end());
  for (std::size_t l = 0; l < views_.size(); ++l) {
    const auto& view = views_[l];
    std::vector<double> a(view.out);
    for (std::size_t o = 0; o < view.out; ++o) {
      double s = params_[view.b_offset + o];
      const double* w = &params_[view.w_offset + o * view.in];
      for (std::size_t i = 0; i < view.in; ++i) s += w[i] * acts[l][i];
      a[o] = l + 1 < views_.size() ? fast_tanh(s) : s;
    }
    acts.push_back(std::move(a));
  }

  // Backward pass: delta = d(output)/d(pre-activation of layer l).
  std::vector<double> delta{1.0};  // linear output unit
  for (std::size_t li = views_.size(); li-- > 0;) {
    const auto& view = views_[li];
    const auto& a_in = acts[li];
    for (std::size_t o = 0; o < view.out; ++o) {
      grad[view.b_offset + o] = delta[o];
      double* g = &grad[view.w_offset + o * view.in];
      for (std::size_t i = 0; i < view.in; ++i) g[i] = delta[o] * a_in[i];
    }
    if (li == 0) break;
    // Propagate through the weights and the tanh of the previous layer
    // (acts[li] holds tanh(z) so tanh' = 1 - a^2).
    std::vector<double> prev(view.in, 0.0);
    for (std::size_t o = 0; o < view.out; ++o) {
      const double* w = &params_[view.w_offset + o * view.in];
      for (std::size_t i = 0; i < view.in; ++i) prev[i] += w[i] * delta[o];
    }
    for (std::size_t i = 0; i < view.in; ++i) {
      prev[i] *= 1.0 - acts[li][i] * acts[li][i];
    }
    delta = std::move(prev);
  }
  return acts.back()[0];
}

void Normalizer::fit(std::span<const double> values) {
  lo_.assign(1, values.empty() ? 0.0 : values[0]);
  hi_.assign(1, values.empty() ? 1.0 : values[0]);
  for (double v : values) {
    lo_[0] = std::min(lo_[0], v);
    hi_[0] = std::max(hi_[0], v);
  }
}

void Normalizer::fit_columns(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return;
  const std::size_t n = rows.front().size();
  lo_.assign(n, rows.front()[0]);
  hi_.assign(n, rows.front()[0]);
  for (std::size_t c = 0; c < n; ++c) {
    lo_[c] = hi_[c] = rows.front()[c];
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < n; ++c) {
      lo_[c] = std::min(lo_[c], row[c]);
      hi_[c] = std::max(hi_[c], row[c]);
    }
  }
}

double Normalizer::map(double v, std::size_t feature) const {
  const double lo = lo_.at(feature);
  const double hi = hi_.at(feature);
  if (hi <= lo) return 0.0;
  return 2.0 * (v - lo) / (hi - lo) - 1.0;
}

double Normalizer::unmap(double v, std::size_t feature) const {
  const double lo = lo_.at(feature);
  const double hi = hi_.at(feature);
  return lo + (v + 1.0) * 0.5 * (hi - lo);
}

double Normalizer::unmap_delta(double dv, std::size_t feature) const {
  const double lo = lo_.at(feature);
  const double hi = hi_.at(feature);
  return dv * 0.5 * (hi - lo);
}

std::vector<double> Normalizer::map_row(std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) out[c] = map(row[c], c);
  return out;
}

}  // namespace rafiki::ml
