// Intrusive-list LRU cache used for the row cache, key cache, in-heap file
// (chunk) cache and the OS page cache model. Capacity is in entries; the
// engine converts configured megabytes to entries with the per-entry sizes
// of the structure being cached.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace rafiki::engine {

template <typename Key>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {}

  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    evict_overflow();
  }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return map_.size(); }

  /// Looks a key up and, if present, promotes it to most-recently-used.
  bool touch(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return true;
  }

  /// Inserts (or refreshes) a key, evicting the LRU entry if at capacity.
  void insert(const Key& key) {
    if (capacity_ == 0) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.push_front(key);
    map_.emplace(key, order_.begin());
    evict_overflow();
  }

  void erase(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    order_.erase(it->second);
    map_.erase(it);
  }

  void clear() {
    map_.clear();
    order_.clear();
  }

  std::uint64_t hits() const noexcept { return hits_; }

 private:
  void evict_overflow() {
    while (map_.size() > capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
  }

  std::size_t capacity_;
  std::list<Key> order_;
  std::unordered_map<Key, typename std::list<Key>::iterator> map_;
  std::uint64_t hits_ = 0;
};

}  // namespace rafiki::engine
