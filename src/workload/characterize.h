// Workload characterization (Section 3.3): turns a raw query trace into the
// statistics Rafiki's surrogate model and data-collection phases consume —
// the read-ratio series over stationary windows and the exponential fit of
// the key-reuse-distance distribution.
#pragma once

#include <span>
#include <vector>

#include "workload/mgrast.h"
#include "workload/spec.h"

namespace rafiki::workload {

/// Read-ratio of each fixed-size window of the trace, in trace order.
std::vector<double> read_ratio_series(std::span<const TraceRecord> trace, double window_s);

/// All realized key-reuse distances (in queries) observed in the trace:
/// for every access of a key seen before, the number of intervening queries.
std::vector<double> reuse_distances(std::span<const TraceRecord> trace);

/// Result of characterizing a trace.
struct Characterization {
  /// Chosen window over which the RR statistic is (approximately)
  /// stationary; the paper finds 15 minutes for MG-RAST.
  double window_s = 0.0;
  /// RR per window at that granularity.
  std::vector<double> read_ratios;
  /// MLE mean of the exponential KRD fit.
  double krd_mean = 0.0;
  /// Fraction of write operations that insert previously-unseen keys.
  double insert_fraction = 0.0;
  /// Mean payload bytes across write operations.
  double mean_value_bytes = 0.0;
};

/// Searches candidate window sizes for the smallest one at which RR is
/// stationary, operationalized via each window's *disagreement*: the mean
/// |RR(first half) - RR(second half)|. Too-small windows disagree because of
/// sub-window burstiness; too-large ones because they mix workload regimes.
/// The chosen window is the smallest whose disagreement is within `slack` of
/// the best candidate's.
double find_stationary_window(std::span<const TraceRecord> trace,
                              std::span<const double> candidate_windows_s,
                              double slack = 1.3);

/// Full characterization pass over a trace.
Characterization characterize(std::span<const TraceRecord> trace,
                              std::span<const double> candidate_windows_s);

/// Builds the WorkloadSpec for one observed window, combining the global
/// (stationary) KRD/payload statistics with the window's read ratio.
WorkloadSpec spec_for_window(const Characterization& ch, std::size_t window_index);

}  // namespace rafiki::workload
