file(REMOVE_RECURSE
  "CMakeFiles/multi_server.dir/multi_server.cpp.o"
  "CMakeFiles/multi_server.dir/multi_server.cpp.o.d"
  "multi_server"
  "multi_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
