// Search-space abstraction for the configuration optimizers. Kept generic
// (no engine dependency) so the optimizers are testable on analytic
// functions; core/ maps engine parameter specs onto Dimensions.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rafiki::opt {

struct Dimension {
  std::string name;
  /// Integral dimensions (integers and categoricals) admit only whole
  /// values; real dimensions are continuous.
  bool integral = false;
  double lo = 0.0;
  double hi = 1.0;
};

/// Objective to maximize, evaluated on a point in dimension order.
using Objective = std::function<double(std::span<const double>)>;

class SearchSpace {
 public:
  explicit SearchSpace(std::vector<Dimension> dims);

  std::size_t size() const noexcept { return dims_.size(); }
  const Dimension& dim(std::size_t i) const { return dims_.at(i); }
  const std::vector<Dimension>& dims() const noexcept { return dims_; }

  std::vector<double> random_point(Rng& rng) const;
  /// Clamps into bounds and rounds integral dimensions.
  std::vector<double> snap(std::vector<double> point) const;
  bool feasible(std::span<const double> point) const;
  /// Total constraint violation: distance outside bounds plus distance from
  /// integrality, used by the GA's penalty-based constraint handling.
  double violation(std::span<const double> point) const;

  /// Full-factorial enumeration with `levels[i]` evenly spaced values per
  /// dimension (endpoints included). The exhaustive-search baseline.
  std::vector<std::vector<double>> grid(std::span<const std::size_t> levels) const;
  /// Number of points such a grid would contain.
  std::size_t grid_size(std::span<const std::size_t> levels) const;

  /// Evenly spaced candidate values for one dimension (used by grid and the
  /// greedy sweep); integral dimensions get de-duplicated rounded levels.
  std::vector<double> level_values(std::size_t dim_index, std::size_t levels) const;

 private:
  std::vector<Dimension> dims_;
};

/// Maps between a full search space and a reduced subspace spanned by a
/// subset of its dimensions, with every non-selected dimension pinned at a
/// fixed value. The significance-aware tuning layer (src/tune/) searches the
/// reduced space while models keep consuming full-dimensional points, so
/// re-cutting the subspace never invalidates anything trained on the full
/// space. Kept generic (index-based, no engine dependency) like the rest of
/// this header.
class SubspaceMap {
 public:
  /// `active` must be strictly increasing, in range, and non-empty;
  /// `pinned` must carry one value per full dimension (active entries are
  /// ignored on expand — the reduced point overrides them).
  SubspaceMap(std::vector<Dimension> full_dims, std::vector<std::size_t> active,
              std::vector<double> pinned);

  /// The reduced search space (one Dimension per active index).
  const SearchSpace& reduced() const noexcept { return reduced_; }
  std::size_t full_size() const noexcept { return pinned_.size(); }
  const std::vector<std::size_t>& active() const noexcept { return active_; }
  const std::vector<double>& pinned() const noexcept { return pinned_; }

  /// Full-dimensional point: pinned values with the reduced point's values
  /// substituted at the active indices.
  std::vector<double> expand(std::span<const double> reduced_point) const;
  /// Reduced point: the full point's values at the active indices.
  std::vector<double> restrict(std::span<const double> full_point) const;

 private:
  std::vector<std::size_t> active_;
  std::vector<double> pinned_;
  SearchSpace reduced_;
};

}  // namespace rafiki::opt
