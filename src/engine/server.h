// The simulated Cassandra-like storage server.
//
// Real LSM mechanics over a virtual clock: writes append to a commit log and
// a memtable; memtables freeze and flush into SSTables (real sorted key runs
// with real Bloom filters); compaction strategies merge SSTables in the
// background while sharing CPU and disk with foreground traffic. Throughput
// is operations per virtual second.
//
// Simulation scheme: operations execute structurally one at a time, grouped
// into small epochs (~256 ops). At each epoch boundary the engine solves for
// elapsed virtual time from the accumulated resource demands —
//   T = max(cpu/cores, disk_read/channels, disk_write/channels,
//           latency-derived concurrency caps) + write-stall time —
// then grants background flush/compaction work the residual capacity. This
// keeps the model fast while letting the phenomena Rafiki tunes for
// (compaction debt, flush backpressure, cache hit rates, read amplification)
// emerge from actual state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "engine/cache.h"
#include "engine/compaction.h"
#include "engine/config.h"
#include "engine/hardware.h"
#include "engine/memtable.h"
#include "engine/sstable.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace rafiki::engine {

struct RunOptions {
  std::uint64_t seed = 1;
  /// Operations per measurement; stands in for the paper's 5-minute
  /// benchmark window (see Hardware::mem_scale for the scale-down scheme).
  std::size_t ops = 60000;
  /// Multiplicative Gaussian noise applied to the reported mean throughput,
  /// modelling benchmark-harness measurement error.
  double measurement_noise_sd = 0.0;
  /// When set, RunStats::window_throughput holds mean throughput per
  /// `window_s` virtual seconds (used for Figure 10).
  bool record_windows = false;
  double window_s = 10.0;
};

struct RunStats {
  double throughput_ops = 0.0;  ///< mean operations per virtual second
  double virtual_seconds = 0.0;
  /// Mean per-operation latencies (Section 2.3 discusses why MG-RAST tunes
  /// for throughput; the latencies are reported for completeness).
  double mean_read_latency_us = 0.0;
  double mean_write_latency_us = 0.0;
  std::size_t ops = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t flushes = 0;
  std::size_t compactions = 0;
  double compacted_kb = 0.0;
  double avg_sstables_probed = 0.0;  ///< read amplification actually paid
  double file_cache_hit_rate = 0.0;
  double os_cache_hit_rate = 0.0;
  std::size_t disk_random_reads = 0;
  double write_stall_s = 0.0;
  std::size_t final_sstable_count = 0;
  std::size_t max_sstable_count = 0;
  std::size_t tombstones_purged = 0;  ///< deletion markers evicted by compaction
  std::vector<double> window_throughput;
  /// Fraction of epochs bound by each resource, for calibration diagnosis:
  /// {cpu, disk_read, disk_write, read_latency, write_latency}.
  std::array<double, 5> binding_fractions{};
};

class Server {
 public:
  explicit Server(Config config, Hardware hardware = {}, CostModel costs = {});

  /// Bulk-loads pre-existing data as SSTables arranged the way a store under
  /// sustained operation looks for the configured compaction strategy:
  /// overlapping runs for size-tiered, striped levels for leveled.
  ///
  /// `version_dup` is the expected number of *extra* row versions per key
  /// accumulated from the update history since the last full compaction.
  /// Size-tiered spreads them across its overlapping tables (the
  /// read-amplification the paper attributes to STCS, Section 2.2.2);
  /// leveled compaction continuously folds versions in, so only a quarter of
  /// them survive, parked in a recent L0 run. Must precede run()/step().
  void preload(std::span<const std::int64_t> keys, std::uint32_t value_bytes,
               double version_dup = 0.65);

  /// Runs a full measurement: draws opts.ops operations from the generator.
  RunStats run(workload::Generator& generator, const RunOptions& opts);

  /// Executes one epoch of concrete operations and returns the virtual time
  /// elapsed (microseconds). Building block for run(), the cluster wrapper
  /// and white-box tests.
  double step(std::span<const workload::Op> ops);

  /// Time-varying performance modulation hook: multiplies foreground CPU
  /// cost by f(virtual_seconds). Used by the ScyllaDB model to inject its
  /// auto-tuner's throughput fluctuation; identity when unset.
  void set_perf_modulation(std::function<double(double)> modulation) {
    modulation_ = std::move(modulation);
  }

  // --- introspection (tests, stats assembly) ---
  const Config& config() const noexcept { return config_; }
  const Hardware& hardware() const noexcept { return hardware_; }
  const std::vector<SSTable>& sstables() const noexcept { return tables_; }
  std::size_t frozen_memtable_count() const noexcept { return frozen_.size(); }
  std::size_t active_compaction_count() const noexcept { return active_compactions_.size(); }
  double virtual_seconds() const noexcept { return clock_us_ / 1e6; }
  std::size_t flush_count() const noexcept { return flushes_; }
  std::size_t compaction_count() const noexcept { return compactions_; }
  double total_probes() const noexcept { return probes_total_; }
  std::size_t read_count() const noexcept { return reads_; }
  std::size_t write_count() const noexcept { return writes_; }
  double write_stall_us() const noexcept { return stall_us_total_; }
  std::size_t tombstones_purged() const noexcept { return tombstones_purged_; }
  /// Resets measurement counters (not state) so a warmup phase can be
  /// excluded from the reported statistics.
  void reset_counters();

 private:
  struct FlushJob {
    Memtable memtable;
    double total_kb = 0.0;
    double remaining_kb = 0.0;
  };
  struct CompactionJob {
    CompactionPlan plan;
    double total_kb = 0.0;
    double remaining_kb = 0.0;
  };
  /// Per-epoch resource demand accumulator.
  struct Acc {
    double cpu_us = 0.0;
    double read_lat_us = 0.0;
    double write_lat_us = 0.0;
    std::size_t disk_random_reads = 0;
    double commitlog_kb = 0.0;
    double stall_us = 0.0;
    std::size_t reads = 0;
    std::size_t writes = 0;
  };

  void execute_read(std::int64_t key, Acc& acc);
  void execute_write(const workload::Op& op, Acc& acc);
  void freeze_memtable(Acc& acc);
  void complete_flush(FlushJob& job);
  void plan_compactions();
  void complete_compaction(const CompactionJob& job);
  double advance_time(Acc& acc);
  void progress_background(double t_us, double flush_rate_kb_per_us,
                           double comp_rate_kb_per_us);
  /// Data-page access cost through the cache hierarchy; updates `acc` and
  /// returns the CPU+wait microseconds to add to op latency.
  double access_page(std::uint64_t page_id, Acc& acc);

  std::uint64_t page_id(std::uint32_t table_id, std::size_t rank, double row_bytes) const;
  double flush_threshold_bytes() const;
  double memtable_space_bytes() const;
  const SSTable* find_table(std::uint32_t id) const;
  std::vector<const SSTable*> read_candidates(std::int64_t key) const;
  void rebuild_level_index();
  void record_window(double t_us, std::size_t ops_done);

  Config config_;
  Hardware hardware_;
  CostModel costs_;
  Rng rng_{1};
  std::function<double(double)> modulation_;

  // Derived sizing (scaled bytes / entries); see ctor.
  double sstable_target_bytes_ = 0.0;
  double chunk_kb_ = 64.0;
  bool leveled_ = false;

  // LSM state.
  Memtable active_;
  std::deque<FlushJob> frozen_;
  std::vector<SSTable> tables_;
  std::size_t total_table_keys_ = 0;
  double frozen_bytes_ = 0.0;
  std::uint32_t next_table_id_ = 1;
  BusySet busy_;
  std::vector<CompactionJob> active_compactions_;
  /// Per-level table ids ordered by min key; rebuilt lazily (leveled mode).
  std::vector<std::vector<std::uint32_t>> level_index_;
  bool level_index_dirty_ = true;

  // Caches.
  LruCache<std::int64_t> row_cache_;
  LruCache<std::int64_t> key_cache_;
  LruCache<std::uint64_t> file_cache_;
  LruCache<std::uint64_t> os_cache_;

  // Clock and feedback.
  double clock_us_ = 0.0;
  double disk_read_rho_ = 0.0;   ///< previous-epoch utilization, queueing feedback
  double disk_write_rho_ = 0.0;

  // Counters.
  std::size_t reads_ = 0, writes_ = 0, flushes_ = 0, compactions_ = 0;
  double compacted_kb_ = 0.0;
  double probes_total_ = 0.0;
  double read_latency_total_us_ = 0.0;
  double write_latency_total_us_ = 0.0;
  std::uint64_t file_lookups_ = 0, file_hits_ = 0;
  std::uint64_t os_lookups_ = 0, os_hits_ = 0;
  std::size_t disk_random_reads_ = 0;
  double stall_us_total_ = 0.0;
  std::size_t max_tables_ = 0;
  std::size_t tombstones_purged_ = 0;
  std::array<std::size_t, 5> binding_counts_{};
  std::size_t epochs_ = 0;

  // Windowed throughput recording.
  bool record_windows_ = false;
  double window_us_ = 10e6;
  double window_start_us_ = 0.0;
  double window_ops_ = 0.0;
  std::vector<double> window_throughput_;
};

}  // namespace rafiki::engine
