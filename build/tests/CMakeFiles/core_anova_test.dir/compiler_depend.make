# Empty compiler generated dependencies file for core_anova_test.
# This may be replaced when dependencies are built.
