// Workload characterization from a raw trace file (Section 3.3): the DBA
// hands Rafiki a representative query log; this example synthesizes one,
// round-trips it through the CSV format an operational deployment would log,
// and extracts the statistics the pipeline needs — the stationary window,
// the per-window read-ratio series and the exponential KRD fit.
//
// Usage: trace_characterization [trace.csv]
//   With no argument a 12-hour MG-RAST-like trace is synthesized, written to
//   /tmp/rafiki_trace.csv and then read back like a user-provided file.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "workload/characterize.h"
#include "workload/mgrast.h"

using namespace rafiki;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/rafiki_trace.csv";
    workload::MgRastTraceOptions options;
    options.duration_s = 12 * 3600.0;
    const auto windows = workload::synthesize_mgrast_windows(options, /*seed=*/21);
    workload::WorkloadSpec base;
    const auto records =
        workload::synthesize_mgrast_queries(windows, 3000, base, options.window_s, 22);
    std::ofstream out(path);
    out << workload::trace_to_csv(records);
    std::printf("synthesized %zu queries -> %s\n", records.size(), path.c_str());
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto trace = workload::parse_trace_csv(buffer.str());
  std::printf("parsed %zu records spanning %.1f hours\n", trace.size(),
              (trace.back().t_s - trace.front().t_s) / 3600.0);

  const std::vector<double> candidates = {112.5, 225.0, 450.0, 900.0, 1800.0};
  const auto ch = workload::characterize(trace, candidates);

  std::printf("\ncharacterization:\n");
  std::printf("  stationary window: %.1f s (%.1f minutes)\n", ch.window_s,
              ch.window_s / 60.0);
  std::printf("  key-reuse distance (exp. mean): %.0f queries\n", ch.krd_mean);
  std::printf("  insert fraction of writes: %.2f\n", ch.insert_fraction);
  std::printf("  mean payload: %.0f bytes\n", ch.mean_value_bytes);

  std::printf("\nread-ratio series (%zu windows):\n  ", ch.read_ratios.size());
  for (std::size_t i = 0; i < ch.read_ratios.size(); ++i) {
    std::printf("%.2f ", ch.read_ratios[i]);
    if (i % 16 == 15) std::printf("\n  ");
  }
  std::printf("\n\nthe WorkloadSpec for window 0 that data collection would use:\n");
  const auto spec = workload::spec_for_window(ch, 0);
  std::printf("  read_ratio=%.2f krd_mean=%.0f insert_fraction=%.2f value_bytes=%u\n",
              spec.read_ratio, spec.krd_mean, spec.insert_fraction, spec.value_bytes);
  return 0;
}
